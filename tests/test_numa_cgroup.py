"""Unit tests for NUMA topology, cgroups, offlining, and hugepage pools."""

import pytest

from repro.dram.mapping import AddressRange
from repro.errors import CgroupError, MmError, OfflineError, OutOfMemoryError
from repro.mm import (
    Cgroup,
    CgroupManager,
    HugePagePool,
    NodeKind,
    NumaNode,
    NumaTopology,
    OfflineRegistry,
    Process,
)
from repro.mm.offline import OfflineReason
from repro.units import KiB, MiB, PAGE_2M, PAGE_4K


def make_node(node_id=0, kind=NodeKind.HOST_RESERVED, phys=0, base=0, size=8 * MiB, cpus=()):
    return NumaNode(
        node_id=node_id,
        kind=kind,
        physical_node=phys,
        ranges=[AddressRange(base, base + size)],
        cpus=cpus,
        subarray_groups=(node_id,),
    )


class TestNumaNode:
    def test_memory_only_detection(self):
        assert make_node().is_memory_only
        assert not make_node(cpus=(0, 1)).is_memory_only

    def test_alloc_and_free(self):
        node = make_node()
        addr = node.alloc_bytes(PAGE_2M)
        assert node.free_bytes == 8 * MiB - PAGE_2M
        node.free_addr(addr)
        assert node.free_bytes == 8 * MiB


class TestTopology:
    def setup_method(self):
        self.topo = NumaTopology()
        self.host0 = self.topo.add(make_node(0, NodeKind.HOST_RESERVED, phys=0, base=0, cpus=(0, 1)))
        self.guest1 = self.topo.add(
            make_node(1, NodeKind.GUEST_RESERVED, phys=0, base=8 * MiB)
        )
        self.guest2 = self.topo.add(
            make_node(2, NodeKind.GUEST_RESERVED, phys=1, base=16 * MiB)
        )

    def test_duplicate_id_rejected(self):
        with pytest.raises(MmError):
            self.topo.add(make_node(0))

    def test_unknown_node_rejected(self):
        with pytest.raises(MmError):
            self.topo.node(99)

    def test_nodes_sorted(self):
        assert [n.node_id for n in self.topo.nodes] == [0, 1, 2]

    def test_nodes_of_kind(self):
        guests = self.topo.nodes_of_kind(NodeKind.GUEST_RESERVED)
        assert [n.node_id for n in guests] == [1, 2]

    def test_node_of_addr(self):
        assert self.topo.node_of_addr(9 * MiB).node_id == 1
        with pytest.raises(MmError):
            self.topo.node_of_addr(100 * MiB)

    def test_distance_same_socket_logical_nodes(self):
        assert self.topo.distance(0, 1) == 10
        assert self.topo.distance(0, 2) == 21

    def test_alloc_on_node_binds(self):
        addr = self.topo.alloc_on_node(1, PAGE_4K)
        assert 8 * MiB <= addr < 16 * MiB

    def test_alloc_preferring_falls_back_by_distance(self):
        # Exhaust node 1; preferred allocation falls back to node 0
        # (same socket) before node 2 (remote).
        self.topo.alloc_on_node(1, 8 * MiB)
        nid, addr = self.topo.alloc_preferring(1, PAGE_4K, allowed={0, 1, 2})
        assert nid == 0

    def test_alloc_preferring_requires_membership(self):
        with pytest.raises(MmError):
            self.topo.alloc_preferring(1, PAGE_4K, allowed={0, 2})

    def test_alloc_preferring_oom(self):
        self.topo.alloc_on_node(1, 8 * MiB)
        with pytest.raises(OutOfMemoryError):
            self.topo.alloc_preferring(1, PAGE_4K, allowed={1})

    def test_free_addr_routes_to_owner(self):
        addr = self.topo.alloc_on_node(2, PAGE_4K)
        self.topo.free_addr(addr)
        assert self.guest2.free_bytes == 8 * MiB

    def test_len_and_contains(self):
        assert len(self.topo) == 3
        assert 1 in self.topo and 9 not in self.topo


class TestCgroups:
    def setup_method(self):
        self.mgr = CgroupManager(default_mems={0})
        self.qemu = Process(pid=100, name="qemu-vm0", kvm_privileged=True)
        self.rogue = Process(pid=200, name="rogue")

    def test_create_and_attach(self):
        grp = self.mgr.create("vm0", exclusive_mems={1})
        grp.attach(self.qemu)
        assert self.qemu.cgroup is grp
        assert self.qemu in grp.tasks

    def test_exclusive_mems_conflict(self):
        self.mgr.create("vm0", exclusive_mems={1})
        with pytest.raises(CgroupError):
            self.mgr.create("vm1", exclusive_mems={1})

    def test_non_exclusive_overlap_ok(self):
        self.mgr.create("a", mems={1})
        self.mgr.create("b", mems={1})

    def test_duplicate_name_rejected(self):
        self.mgr.create("vm0")
        with pytest.raises(CgroupError):
            self.mgr.create("vm0")

    def test_destroy_releases_and_reparents(self):
        grp = self.mgr.create("vm0", exclusive_mems={1})
        grp.attach(self.qemu)
        self.mgr.destroy("vm0")
        assert self.qemu.cgroup is self.mgr.root
        # Node 1 is reusable by a new exclusive group now.
        self.mgr.create("vm1", exclusive_mems={1})

    def test_destroy_root_rejected(self):
        with pytest.raises(CgroupError):
            self.mgr.destroy(CgroupManager.ROOT)

    def test_destroy_missing_rejected(self):
        with pytest.raises(CgroupError):
            self.mgr.destroy("nope")

    def test_admission_requires_mems(self):
        grp = self.mgr.create("vm0", mems={1})
        grp.attach(self.qemu)
        self.mgr.check_allocation(self.qemu, 1, node_is_guest_reserved=True)
        with pytest.raises(CgroupError):
            self.mgr.check_allocation(self.qemu, 2, node_is_guest_reserved=True)

    def test_admission_requires_kvm_privilege(self):
        grp = self.mgr.create("vm0", mems={1})
        grp.attach(self.qemu)
        grp.attach(self.rogue)
        with pytest.raises(CgroupError):
            self.mgr.check_allocation(self.rogue, 1, node_is_guest_reserved=True)
        # Host-reserved node: no KVM privilege needed.
        self.mgr.check_allocation(self.rogue, 1, node_is_guest_reserved=False)

    def test_default_cgroup_is_root(self):
        with pytest.raises(CgroupError):
            self.mgr.check_allocation(self.rogue, 5, node_is_guest_reserved=False)
        self.mgr.check_allocation(self.rogue, 0, node_is_guest_reserved=False)

    def test_reattach_moves_task(self):
        a = self.mgr.create("a", mems={1})
        b = self.mgr.create("b", mems={2})
        a.attach(self.qemu)
        b.attach(self.qemu)
        assert self.qemu not in a.tasks and self.qemu in b.tasks


class TestOfflineRegistry:
    def setup_method(self):
        self.node = make_node()
        self.registry = OfflineRegistry()

    def test_offline_removes_from_pool(self):
        target = AddressRange(0, 64 * KiB)
        self.registry.offline(self.node, target, OfflineReason.GUARD_ROW)
        assert self.node.free_bytes == 8 * MiB - 64 * KiB
        assert self.registry.is_offline(0)
        assert not self.registry.is_offline(64 * KiB)

    def test_offline_outside_node_rejected(self):
        with pytest.raises(OfflineError):
            self.registry.offline(
                self.node, AddressRange(100 * MiB, 101 * MiB), OfflineReason.FAULTY
            )

    def test_offline_busy_range_rejected(self):
        addr = self.node.alloc_bytes(PAGE_4K)
        with pytest.raises(OfflineError):
            self.registry.offline(
                self.node,
                AddressRange(addr, addr + PAGE_4K),
                OfflineReason.FAULTY,
            )

    def test_accounting_by_reason(self):
        self.registry.offline(
            self.node, AddressRange(0, 64 * KiB), OfflineReason.GUARD_ROW
        )
        self.registry.offline(
            self.node,
            AddressRange(1 * MiB, 1 * MiB + 8 * KiB),
            OfflineReason.INTER_SUBARRAY_REPAIR,
        )
        assert self.registry.total_bytes() == 64 * KiB + 8 * KiB
        assert self.registry.total_bytes(OfflineReason.GUARD_ROW) == 64 * KiB
        assert self.registry.summary() == {
            "guard-row": 64 * KiB,
            "inter-subarray-repair": 8 * KiB,
        }

    def test_ranges_for_merges(self):
        self.registry.offline(
            self.node, AddressRange(0, 4 * KiB), OfflineReason.GUARD_ROW
        )
        self.registry.offline(
            self.node, AddressRange(4 * KiB, 8 * KiB), OfflineReason.GUARD_ROW
        )
        assert self.registry.ranges_for(OfflineReason.GUARD_ROW) == [
            AddressRange(0, 8 * KiB)
        ]


class TestHugePagePool:
    def setup_method(self):
        self.node = make_node(size=16 * MiB)

    def test_reserves_at_construction(self):
        pool = HugePagePool(self.node, pages=4)
        assert pool.free_pages == 4
        assert self.node.free_bytes == 16 * MiB - 4 * PAGE_2M

    def test_take_and_give_back(self):
        pool = HugePagePool(self.node, pages=4)
        addr = pool.take()
        assert pool.taken_pages == 1
        pool.give_back(addr)
        assert pool.free_pages == 4

    def test_take_lowest_first(self):
        pool = HugePagePool(self.node, pages=4)
        assert pool.take() < pool.take()

    def test_exhaustion(self):
        pool = HugePagePool(self.node, pages=2)
        pool.take()
        pool.take()
        with pytest.raises(OutOfMemoryError):
            pool.take()

    def test_give_back_foreign_rejected(self):
        pool = HugePagePool(self.node, pages=2)
        with pytest.raises(MmError):
            pool.give_back(0xDEAD000)

    def test_take_contiguous(self):
        pool = HugePagePool(self.node, pages=8)
        r = pool.take_contiguous(4)
        assert r.size == 4 * PAGE_2M
        assert pool.taken_pages == 4

    def test_take_contiguous_insufficient(self):
        pool = HugePagePool(self.node, pages=2)
        with pytest.raises(OutOfMemoryError):
            pool.take_contiguous(3)

    def test_oversubscribed_reservation_rolls_back(self):
        with pytest.raises(OutOfMemoryError):
            HugePagePool(self.node, pages=1000)
        assert self.node.free_bytes == 16 * MiB

    def test_release_all(self):
        pool = HugePagePool(self.node, pages=4)
        pool.release_all()
        assert self.node.free_bytes == 16 * MiB

    def test_release_all_with_taken_rejected(self):
        pool = HugePagePool(self.node, pages=4)
        pool.take()
        with pytest.raises(MmError):
            pool.release_all()

    def test_rejects_zero_pages(self):
        with pytest.raises(MmError):
            HugePagePool(self.node, pages=0)
