"""Memory-controller edge cases, parameterized over all three backends.

The vectorized pipeline's closed forms (cumsum + running max) have their
own degenerate-input hazards — empty segments, single elements, blackout
boundaries, interleave wrap-around — that the scalar loop never sees.
Each case here pins the behaviour once and asserts all backends agree.
"""

from __future__ import annotations

import pytest

from repro.dram.geometry import DRAMGeometry
from repro.dram.mapping import SkylakeMapping
from repro.errors import MemCtrlError
from repro.memctrl import (
    DDR4Timings,
    FrFcfsController,
    MemoryAccess,
    MemoryController,
)

BACKENDS = ("scalar", "batched", "vectorized")
GEOM = DRAMGeometry.small()
MAPPING = SkylakeMapping.for_small_geometry(GEOM)
T = DDR4Timings.ddr4_2933()


def _line(i: int) -> int:
    return (i * 64) % GEOM.total_bytes


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


class TestDegenerateTraces:
    def test_empty_trace_rejected(self, backend):
        with pytest.raises(MemCtrlError):
            MemoryController(MAPPING, backend=backend).run_trace([])
        with pytest.raises(MemCtrlError):
            FrFcfsController(MAPPING, backend=backend).run_trace([])

    def test_empty_batch_rejected(self, backend):
        from repro.memctrl.pipeline import AccessBatch

        with pytest.raises(MemCtrlError):
            MemoryController(MAPPING, backend=backend).run_batch(
                AccessBatch.from_accesses([])
            )

    def test_single_request(self, backend):
        result = MemoryController(MAPPING, backend=backend).run_trace(
            [MemoryAccess(hpa=0, cpu_gap_ns=3.0)]
        )
        assert result.accesses == 1
        assert result.row_misses == 1 and result.row_hits == 0
        # One idle-bank access at t=3: blackout window 0 delays it to
        # tRFC, then activate+read+burst.
        assert result.total_time_ns == T.t_rfc + T.idle_latency
        assert result.refreshes == 1

    def test_single_request_frfcfs_any_window(self, backend):
        for window in (1, 4, 64):
            result = FrFcfsController(
                MAPPING, window=window, backend=backend
            ).run_trace([MemoryAccess(hpa=0)])
            assert result.accesses == 1


class TestRefreshBoundaries:
    """Bursts that straddle refresh-blackout edges must agree exactly —
    the vectorized path computes the blackout with floor division, the
    scalar path with ``math.floor``."""

    def _burst_at(self, start_gap: float, count: int = 8) -> list[MemoryAccess]:
        gaps = [start_gap] + [0.5] * (count - 1)
        return [
            MemoryAccess(hpa=_line(i), cpu_gap_ns=gaps[i]) for i in range(count)
        ]

    @pytest.mark.parametrize(
        "start_gap",
        (
            0.0,  # lands at t=0, inside blackout 0
            349.5,  # just inside blackout 0 (tRFC = 350)
            350.0,  # first tick after blackout 0
            7799.5,  # just before blackout 1 (tREFI = 7800)
            7800.0,  # exactly at blackout 1's start
        ),
    )
    def test_blackout_edge_bursts_identical(self, start_gap):
        trace = self._burst_at(start_gap)
        results = {
            b: MemoryController(MAPPING, backend=b).run_trace(list(trace))
            for b in BACKENDS
        }
        for backend in BACKENDS[1:]:
            assert vars(results["scalar"]) == vars(results[backend]), backend

    def test_burst_spanning_many_windows(self, backend):
        # 40 accesses spaced ~one blackout apart: every access lands in
        # a fresh window, so each window is counted exactly once.
        trace = [
            MemoryAccess(hpa=_line(i), cpu_gap_ns=T.t_refi) for i in range(40)
        ]
        result = MemoryController(MAPPING, backend=backend).run_trace(trace)
        assert result.refreshes == 40

    def test_refresh_counts_distinct_windows(self, backend):
        # Many accesses inside one blackout, all on one channel (same
        # line): one refresh per stalled channel-window, not per access.
        trace = [MemoryAccess(hpa=0, cpu_gap_ns=0.0) for _ in range(6)]
        result = MemoryController(MAPPING, backend=backend).run_trace(trace)
        assert result.refreshes == 1


class TestInterleaveBoundaries:
    """Addresses at channel/bank-interleave wrap points decode to the
    extremes of the bank space; the vectorized bank-grouping must not
    mix them up."""

    def _boundary_trace(self) -> list[MemoryAccess]:
        last_line = GEOM.total_bytes - 64
        hpas = [0, 64, last_line, last_line - 64, 0, last_line]
        return [MemoryAccess(hpa=h, cpu_gap_ns=1.0) for h in hpas]

    def test_boundary_addresses_identical(self):
        trace = self._boundary_trace()
        results = {
            b: MemoryController(MAPPING, backend=b).run_trace(list(trace))
            for b in BACKENDS
        }
        for backend in BACKENDS[1:]:
            assert vars(results["scalar"]) == vars(results[backend]), backend

    def test_boundary_revisits_hit(self, backend):
        # hpa 0 and the last line are revisited → two row hits on the
        # open-page policy, on every backend.
        result = MemoryController(MAPPING, backend=backend).run_trace(
            self._boundary_trace()
        )
        assert result.row_hits == 2
        assert result.row_misses == 4

    def test_out_of_range_hpa_rejected(self, backend):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            MemoryController(MAPPING, backend=backend).run_trace(
                [MemoryAccess(hpa=GEOM.total_bytes)]
            )


class TestAccessBatchValidation:
    def test_mismatched_columns_rejected(self):
        np = pytest.importorskip("numpy")
        from repro.memctrl.pipeline import AccessBatch

        with pytest.raises(MemCtrlError):
            AccessBatch(
                hpa=np.zeros(3, dtype=np.int64),
                write=np.zeros(2, dtype=bool),
                cpu_gap_ns=np.zeros(3),
                home_socket=np.zeros(3, dtype=np.int64),
                tag=np.zeros(3, dtype=np.int64),
            )

    def test_roundtrip_preserves_fields(self):
        from repro.memctrl.pipeline import AccessBatch

        trace = [
            MemoryAccess(hpa=_line(3), cpu_gap_ns=1.25, home_socket=0, tag=4)
        ]
        rebuilt = AccessBatch.from_accesses(trace).to_accesses()
        assert [vars(a) for a in trace] == [vars(a) for a in rebuilt]
