"""Tests for the deterministic fault-injection harness (plans, the
injector hook, and DRAM-module fault entry points)."""

import pytest

from repro.dram.ecc import EccOutcome, WORD_BITS
from repro.dram.geometry import DRAMGeometry
from repro.dram.module import DramHook, SimulatedDram
from repro.errors import DramError
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
)


def make_dram(seed=0):
    return SimulatedDram(DRAMGeometry.small(), seed=seed)


def media_of(dram, hpa=0):
    media = dram.mapping.decode(hpa)
    return media.socket, media.socket_bank_index(dram.geom), media.row


class TestFaultSpecValidation:
    def test_stuck_at_needs_bit(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(kind=FaultKind.STUCK_AT, socket=0, bank=0, row=1)

    def test_stuck_value_binary(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(kind=FaultKind.STUCK_AT, socket=0, bank=0, row=1, bit=0, stuck_value=2)

    def test_retention_needs_positive_period(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(kind=FaultKind.RETENTION_WEAK, socket=0, bank=0, row=1, bit=0)

    def test_late_repair_needs_spare(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(kind=FaultKind.LATE_REPAIR, socket=0, bank=0, row=1)

    def test_ecc_word_needs_bits(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(kind=FaultKind.ECC_WORD, socket=0, bank=0, row=1, word=0)

    def test_ecc_word_bits_bounded(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(
                kind=FaultKind.ECC_WORD, socket=0, bank=0, row=1, word=0,
                word_bits=(WORD_BITS,),
            )

    def test_negative_clock_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(kind=FaultKind.LATE_REPAIR, socket=0, bank=0, row=1,
                      spare_row=2, at_clock=-1.0)

    def test_row_bits_absolute(self):
        spec = FaultSpec(
            kind=FaultKind.ECC_WORD, socket=0, bank=0, row=1, word=3,
            word_bits=(0, 5),
        )
        assert spec.row_bits == (3 * WORD_BITS, 3 * WORD_BITS + 5)


class TestFaultPlan:
    def test_specs_kept_time_ordered(self):
        late = FaultSpec(kind=FaultKind.LATE_REPAIR, socket=0, bank=0, row=1,
                         spare_row=2, at_clock=5.0)
        early = FaultSpec(kind=FaultKind.LATE_REPAIR, socket=0, bank=0, row=3,
                          spare_row=4, at_clock=1.0)
        plan = FaultPlan([late]).add(early)
        assert [s.at_clock for s in plan.specs] == [1.0, 5.0]

    def test_round_trip(self):
        plan = FaultPlan.ce_storm(0, 1, 7, errors=5, words_per_row=64, seed=3)
        again = FaultPlan.from_dict(plan.to_dict())
        assert again.specs == plan.specs
        assert again.seed == plan.seed

    def test_ce_storm_distinct_words(self):
        plan = FaultPlan.ce_storm(0, 0, 7, errors=10, words_per_row=64, seed=1)
        words = [s.word for s in plan.specs]
        assert len(set(words)) == len(words)
        assert all(len(s.word_bits) == 1 for s in plan.specs)

    def test_ce_storm_same_seed_same_plan(self):
        a = FaultPlan.ce_storm(0, 0, 7, errors=8, words_per_row=64, seed=9)
        b = FaultPlan.ce_storm(0, 0, 7, errors=8, words_per_row=64, seed=9)
        assert a.specs == b.specs

    def test_ce_storm_too_many_errors(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.ce_storm(0, 0, 7, errors=65, words_per_row=64)

    def test_ce_storm_bad_interval(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.ce_storm(0, 0, 7, errors=2, words_per_row=64, interval=0)


class TestDramFaultEntryPoints:
    def test_inject_and_bit_at(self):
        dram = make_dram()
        dram.inject_bit_error(0, 0, 5, 17)
        assert dram.bit_at(0, 0, 5, 17) == 1
        assert 17 in dram.flip_bits_at(0, 0, 5)

    def test_inject_validates_bit(self):
        dram = make_dram()
        with pytest.raises(DramError):
            dram.inject_bit_error(0, 0, 5, dram.geom.row_bytes * 8)

    def test_duplicate_hook_rejected(self):
        dram = make_dram()
        hook = DramHook()
        dram.register_hook(hook)
        with pytest.raises(DramError):
            dram.register_hook(hook)
        dram.unregister_hook(hook)
        dram.unregister_hook(hook)  # second removal is a no-op


class TestInjector:
    def test_stuck_at_enforced_across_writes(self):
        dram = make_dram()
        socket, bank, row = media_of(dram, 0)
        plan = FaultPlan([
            FaultSpec(kind=FaultKind.STUCK_AT, socket=socket, bank=bank,
                      row=row, bit=3, stuck_value=1)
        ])
        FaultInjector(dram, plan).attach()
        assert dram.bit_at(socket, bank, row, 3) == 1  # armed at t=0
        dram.write(0, bytes(8))  # guest writes healthy zeros
        assert dram.bit_at(socket, bank, row, 3) == 1  # write didn't stick

    def test_stuck_at_zero(self):
        dram = make_dram()
        socket, bank, row = media_of(dram, 0)
        plan = FaultPlan([
            FaultSpec(kind=FaultKind.STUCK_AT, socket=socket, bank=bank,
                      row=row, bit=0, stuck_value=0)
        ])
        FaultInjector(dram, plan).attach()
        dram.write(0, b"\xff")
        assert dram.bit_at(socket, bank, row, 0) == 0

    def test_retention_weak_recurs_after_scrub(self):
        dram = make_dram()
        plan = FaultPlan([
            FaultSpec(kind=FaultKind.RETENTION_WEAK, socket=0, bank=0,
                      row=9, bit=6, retention_s=0.01)
        ])
        FaultInjector(dram, plan).attach()
        assert not dram.flip_bits_at(0, 0, 9)  # armed but not yet decayed
        dram.advance_time(0.011)
        assert 6 in dram.flip_bits_at(0, 0, 9)
        dram.patrol_scrub()  # heals the leak...
        assert not dram.flip_bits_at(0, 0, 9)
        dram.advance_time(0.01)  # ...and the cell leaks it back
        assert 6 in dram.flip_bits_at(0, 0, 9)

    def test_late_repair_appears_at_trigger(self):
        dram = make_dram()
        plan = FaultPlan([
            FaultSpec(kind=FaultKind.LATE_REPAIR, socket=0, bank=0, row=9,
                      spare_row=60, at_clock=0.005)
        ])
        injector = FaultInjector(dram, plan).attach()
        assert dram._to_internal(0, 0, 9) == 9
        assert not injector.exhausted
        dram.advance_time(0.006)
        assert dram._to_internal(0, 0, 9) == 60
        assert injector.exhausted

    def test_ecc_word_correctable_on_scrub(self):
        dram = make_dram()
        plan = FaultPlan.ce_storm(0, 0, 9, errors=3, words_per_row=64,
                                  start=0.0, interval=0.001)
        FaultInjector(dram, plan).attach()
        dram.advance_time(0.01)
        events = dram.patrol_scrub()
        assert len(events) == 3
        assert all(e.outcome is EccOutcome.CORRECTED for e in events)

    def test_detach_stops_firing(self):
        dram = make_dram()
        plan = FaultPlan([
            FaultSpec(kind=FaultKind.ECC_WORD, socket=0, bank=0, row=9,
                      word=0, word_bits=(1,), at_clock=0.5)
        ])
        injector = FaultInjector(dram, plan).attach()
        injector.detach()
        dram.advance_time(1.0)
        assert not dram.flip_bits_at(0, 0, 9)
        assert not injector.exhausted

    def test_replay_determinism(self):
        def run(seed):
            dram = SimulatedDram(DRAMGeometry.small(), seed=seed)
            plan = FaultPlan.ce_storm(0, 0, 9, errors=10, words_per_row=64,
                                      interval=0.002, seed=seed)
            injector = FaultInjector(dram, plan).attach()
            for _ in range(12):
                dram.advance_time(0.002)
                dram.patrol_scrub()
            return (
                [str(e) for e in injector.events],
                dram.ecc.stats.corrected,
                sorted(dram._flips.items()),
            )

        assert run(5) == run(5)
        # Different seed picks different words/bits: the logs must differ.
        assert run(5)[0] != run(6)[0]
