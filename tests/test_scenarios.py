"""Long-horizon integration scenarios: churn, placement policies, and
the invariants that must survive all of it."""

import pytest

from repro.attack import attack_from_vm
from repro.core import SilozHypervisor, audit_hypervisor
from repro.errors import PlacementError
from repro.hv import Machine, VmSpec
from repro.mm.numa import NodeKind
from repro.units import MiB
from repro.workloads import run_in_vm


class TestPlacementPolicies:
    def _boot(self, policy):
        machine = Machine.small(sockets=2, seed=71)
        from repro.core import SilozConfig

        return SilozHypervisor(
            machine,
            SilozConfig.scaled_for(machine.geom),
            backing_page_bytes=64 * 1024,
            placement_policy=policy,
        )

    def test_pack_fills_preferred_socket(self):
        hv = self._boot("pack")
        sockets = []
        for i in range(4):
            vm = hv.create_vm(VmSpec(name=f"vm{i}", memory_bytes=2 * MiB))
            sockets.append(hv.topology.node(vm.node_ids[0]).physical_node)
        assert sockets == [0, 0, 0, 0]

    def test_spread_balances_sockets(self):
        hv = self._boot("spread")
        sockets = []
        for i in range(4):
            vm = hv.create_vm(VmSpec(name=f"vm{i}", memory_bytes=2 * MiB))
            sockets.append(hv.topology.node(vm.node_ids[0]).physical_node)
        assert sockets.count(0) == 2 and sockets.count(1) == 2

    def test_spread_still_isolates(self):
        hv = self._boot("spread")
        for i in range(4):
            hv.create_vm(VmSpec(name=f"vm{i}", memory_bytes=2 * MiB))
        assert audit_hypervisor(hv) == []

    def test_unknown_policy_rejected(self):
        with pytest.raises(PlacementError):
            self._boot("random")


class TestCloudChurn:
    """A compressed 'day in the cloud': boots, workloads, attacks,
    shutdowns, reuse — auditing isolation after every step."""

    def test_churn_preserves_invariants(self):
        hv = SilozHypervisor.boot(Machine.small(sockets=2, seed=72))
        group = hv.machine.geom.subarray_group_bytes

        # Wave 1: fill most of socket 0.
        for i in range(3):
            hv.create_vm(VmSpec(name=f"w1-{i}", memory_bytes=2 * MiB))
        assert audit_hypervisor(hv) == []

        # Tenant runs a workload.
        result = run_in_vm(hv, hv.vm("w1-0"), "redis-b", accesses=3000)
        assert result.execution_seconds > 0

        # A malicious tenant attacks mid-churn.
        outcome = attack_from_vm(hv, hv.vm("w1-1"), seed=72, pattern_budget=20)
        assert outcome.contained and outcome.victim_flips == {}
        assert audit_hypervisor(hv) == []

        # Wave 2: shutdown + release + re-provision larger VMs.
        hv.destroy_vm("w1-0")
        hv.release_reservation("w1-0")
        hv.destroy_vm("w1-2")
        hv.release_reservation("w1-2")
        big = hv.create_vm(VmSpec(name="w2-big", memory_bytes=2 * group - 2 * MiB))
        assert len(big.node_ids) >= 2
        assert audit_hypervisor(hv) == []

        # The attacker from wave 1 is still running; attack again.
        outcome = attack_from_vm(hv, hv.vm("w1-1"), seed=73, pattern_budget=20)
        assert outcome.contained
        assert outcome.victim_flips == {}

        # Wave 3: churn until placement fails, then clean up fully.
        created = []
        for i in range(64):
            try:
                created.append(
                    hv.create_vm(VmSpec(name=f"w3-{i}", memory_bytes=2 * MiB)).name
                )
            except PlacementError:
                break
        assert created, "should fit at least one more VM"
        assert audit_hypervisor(hv) == []
        for name in created + ["w2-big", "w1-1"]:
            hv.destroy_vm(name)
            hv.release_reservation(name)

        # Everything returned: all guest nodes whole again.
        for node in hv.topology.nodes_of_kind(NodeKind.GUEST_RESERVED):
            assert node.free_bytes == node.total_bytes
        # Flips happened during the attacks, but only ever inside the
        # attackers' groups; a final scrub heals the correctable ones.
        assert hv.machine.dram.flips_log
        hv.machine.dram.patrol_scrub()
