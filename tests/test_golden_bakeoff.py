"""Golden-report regression: every mitigation's pinned bake-off digest.

The fixtures in ``tests/golden/bakeoff_<name>.json`` pin each
mitigation's :meth:`BakeoffReport.mitigation_digest` for the canonical
scenario (the seed-7 fleet where the unmitigated baseline demonstrably
corrupts a victim VM).  Any behavioural drift — placement order, attack
outcome, capacity arithmetic, report fields — moves the digest and
fails here LOUDLY, with the regeneration command in the message.

Intentional changes: rerun ``PYTHONPATH=src python
tests/golden/regen_bakeoff.py`` and commit the updated fixtures; the
diff then documents exactly which headline numbers moved.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.mitigations import mitigation_names
from repro.mitigations.bakeoff import BakeoffConfig, run_bakeoff

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"

REGEN = "PYTHONPATH=src python tests/golden/regen_bakeoff.py"


def _fixture_path(name: str) -> pathlib.Path:
    return GOLDEN_DIR / f"bakeoff_{name}.json"


@pytest.fixture(scope="module")
def golden_report():
    """One full-sweep bake-off at the pinned scenario (shared: the six
    comparisons below all read from this single run)."""
    sample = json.loads(_fixture_path("siloz").read_text())
    scenario = sample["scenario"]
    return run_bakeoff(BakeoffConfig(backend="vectorized", **scenario))


def test_every_mitigation_has_a_fixture():
    missing = [n for n in mitigation_names() if not _fixture_path(n).exists()]
    assert not missing, (
        f"no golden fixture for {missing}; generate with: {REGEN}"
    )


def test_fixtures_have_no_orphans():
    known = set(mitigation_names())
    orphans = [
        p.name
        for p in GOLDEN_DIR.glob("bakeoff_*.json")
        if p.stem.removeprefix("bakeoff_") not in known
    ]
    assert not orphans, (
        f"golden fixtures for unregistered mitigations: {orphans}; "
        f"delete them or re-register, then: {REGEN}"
    )


@pytest.mark.parametrize("name", mitigation_names())
def test_golden_digest_matches(name, golden_report):
    fixture = json.loads(_fixture_path(name).read_text())
    current = golden_report.mitigation_digest(name)
    entry = golden_report.entry(name)
    assert current == fixture["digest"], (
        f"\n{name!r} bake-off behaviour drifted from its golden fixture."
        f"\n  pinned digest:  {fixture['digest']}"
        f"\n  current digest: {current}"
        f"\n  pinned headline:  containment={fixture['containment_rate']} "
        f"victims={fixture['victim_flips']} loss={fixture['loss_fraction']}"
        f"\n  current headline: "
        f"containment={entry['containment']['containment_rate']} "
        f"victims={entry['containment']['victim_flips']} "
        f"loss={entry['capacity'].get('loss_fraction')}"
        f"\nIf this change is intentional, regenerate and commit:\n  {REGEN}"
    )


def test_golden_headline_security_story():
    """The fixtures themselves must keep telling the paper's story."""
    none = json.loads(_fixture_path("none").read_text())
    siloz = json.loads(_fixture_path("siloz").read_text())
    assert none["victim_flips"] > 0, "golden baseline no longer leaks"
    assert siloz["victim_flips"] == 0 and siloz["containment_rate"] == 1.0
    assert siloz["loss_fraction"] > none["loss_fraction"], (
        "isolation's capacity price disappeared from the goldens"
    )
