"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_attack_defaults(self):
        args = build_parser().parse_args(["attack"])
        assert args.hypervisor == "siloz"
        assert args.budget == 40

    def test_perf_requires_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["perf"])

    def test_perf_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["perf", "--figure", "9"])

    def test_global_seed(self):
        args = build_parser().parse_args(["--seed", "7", "info"])
        assert args.seed == 7


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "guard rows offlined" in out

    def test_attack_siloz_contained(self, capsys):
        assert main(["--seed", "5", "attack", "--budget", "25"]) == 0
        out = capsys.readouterr().out
        assert "CONTAINED" in out
        assert "audit: clean" in out

    def test_attack_baseline_runs(self, capsys):
        assert main(["--seed", "5", "attack", "--hypervisor", "baseline",
                     "--budget", "15"]) == 0
        assert "verdict" in capsys.readouterr().out

    def test_overheads(self, capsys):
        assert main(["overheads"]) == 0
        out = capsys.readouterr().out
        assert "0.0244%" in out
        assert "ZebRAM" in out

    def test_softrefresh(self, capsys):
        assert main(["softrefresh", "--duration", "5"]) == 0
        out = capsys.readouterr().out
        assert "timer-task" in out and "guard-rows" in out
        assert "safe" in out

    def test_perf_figure4_small(self, capsys):
        assert main(["perf", "--figure", "4", "--trials", "2",
                     "--accesses", "2000"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out and "geomean" in out

    def test_perf_figure6_small(self, capsys):
        assert main(["perf", "--figure", "6", "--trials", "2",
                     "--accesses", "2000"]) == 0
        out = capsys.readouterr().out
        assert "siloz-512" in out and "siloz-2048" in out
