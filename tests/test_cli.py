"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_attack_defaults(self):
        args = build_parser().parse_args(["attack"])
        assert args.hypervisor == "siloz"
        assert args.budget == 40

    def test_perf_requires_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["perf"])

    def test_perf_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["perf", "--figure", "9"])

    def test_global_seed(self):
        args = build_parser().parse_args(["--seed", "7", "info"])
        assert args.seed == 7

    def test_global_observability_flags(self):
        args = build_parser().parse_args(
            ["--trace", "t.jsonl", "--chrome-trace", "c.json", "--metrics", "info"]
        )
        assert args.trace == "t.jsonl"
        assert args.chrome_trace == "c.json"
        assert args.metrics is True

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.scenario == "health"
        assert args.compare_backends is False


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "guard rows offlined" in out

    def test_attack_siloz_contained(self, capsys):
        assert main(["--seed", "5", "attack", "--budget", "25"]) == 0
        out = capsys.readouterr().out
        assert "CONTAINED" in out
        assert "audit: clean" in out

    def test_attack_baseline_runs(self, capsys):
        assert main(["--seed", "5", "attack", "--hypervisor", "baseline",
                     "--budget", "15"]) == 0
        assert "verdict" in capsys.readouterr().out

    def test_overheads(self, capsys):
        assert main(["overheads"]) == 0
        out = capsys.readouterr().out
        assert "0.0244%" in out
        assert "ZebRAM" in out

    def test_softrefresh(self, capsys):
        assert main(["softrefresh", "--duration", "5"]) == 0
        out = capsys.readouterr().out
        assert "timer-task" in out and "guard-rows" in out
        assert "safe" in out

    def test_perf_figure4_small(self, capsys):
        assert main(["perf", "--figure", "4", "--trials", "2",
                     "--accesses", "2000"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out and "geomean" in out

    def test_perf_figure6_small(self, capsys):
        assert main(["perf", "--figure", "6", "--trials", "2",
                     "--accesses", "2000"]) == 0
        out = capsys.readouterr().out
        assert "siloz-512" in out and "siloz-2048" in out


class TestObservability:
    def test_health_writes_jsonl_trace(self, capsys, tmp_path):
        from repro.obs.export import read_jsonl

        path = tmp_path / "t.jsonl"
        assert main(["--seed", "7", "--trace", str(path), "health"]) == 0
        assert "trace: wrote" in capsys.readouterr().out
        events = read_jsonl(path)
        assert events, "health scenario emitted no events"
        kinds = {e.kind for e in events}
        assert "fault_injection" in kinds and "ecc_word" in kinds

    def test_health_chrome_trace_is_valid_json(self, tmp_path):
        import json

        path = tmp_path / "ct.json"
        assert main(["--seed", "7", "--chrome-trace", str(path), "health"]) == 0
        doc = json.loads(path.read_text())
        assert doc["traceEvents"][0]["ph"] == "M"

    def test_metrics_dump(self, capsys):
        assert main(["--seed", "7", "--metrics", "health"]) == 0
        out = capsys.readouterr().out
        assert "# metrics" in out
        assert "counter faults.flip" in out

    def test_trace_summary(self, capsys):
        assert main(["--seed", "7", "trace"]) == 0
        out = capsys.readouterr().out
        assert "trace events:" in out and "ecc_word" in out

    def test_trace_compare_backends(self, capsys):
        assert main(["--seed", "7", "trace", "--compare-backends"]) == 0
        out = capsys.readouterr().out
        assert "sequences identical" in out

    def test_observability_disabled_after_run(self, tmp_path):
        from repro import obs

        main(["--seed", "7", "--trace", str(tmp_path / "t.jsonl"), "health"])
        assert obs.ENABLED is False


class TestFleetCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.hosts == 4
        assert args.policy == "best-fit"
        assert args.scenario == "attack"
        assert args.workers == 1

    def test_policy_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--policy", "worst-fit"])

    def test_small_campaign(self, capsys):
        assert main(["--seed", "3", "fleet", "--hosts", "2", "--vms", "4",
                     "--budget", "1"]) == 0
        out = capsys.readouterr().out
        assert "fleet campaign report" in out
        assert "merge digest:" in out

    def test_workers_merge_identically(self, capsys):
        argv = ["--seed", "3", "fleet", "--hosts", "2", "--vms", "4",
                "--budget", "1"]
        assert main(argv + ["--workers", "1"]) == 0
        one = capsys.readouterr().out
        assert main(argv + ["--workers", "2"]) == 0
        two = capsys.readouterr().out
        digest = [ln for ln in one.splitlines() if ln.startswith("merge digest")]
        assert digest and digest == \
            [ln for ln in two.splitlines() if ln.startswith("merge digest")]

    def test_fleet_writes_jsonl_trace(self, capsys, tmp_path):
        from repro.obs.export import read_jsonl

        path = tmp_path / "fleet.jsonl"
        assert main(["--seed", "3", "--trace", str(path), "fleet",
                     "--hosts", "2", "--vms", "4", "--budget", "1"]) == 0
        events = read_jsonl(path)
        assert events
        kinds = {e.kind for e in events}
        assert "placement" in kinds and "admission" in kinds

    def test_invalid_policy_via_config_is_reported(self, capsys):
        # argparse catches bad --policy; a bad scenario reaching
        # CampaignConfig must exit 2 with a readable message.
        from repro.cli import _cmd_fleet
        import argparse

        args = argparse.Namespace(
            hosts=1, vms=0, policy="best-fit", scenario="bogus",
            backend="scalar", seed=0, workers=1, budget=1,
            queue_depth=4, max_retries=1,
        )
        assert _cmd_fleet(args) == 2
        assert "repro fleet" in capsys.readouterr().err
