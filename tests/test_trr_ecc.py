"""Unit tests for the TRR sampler and ECC models (§2.5)."""

import random

import pytest

from repro.dram.ecc import (
    EccEngine,
    EccOutcome,
    classify_word,
)
from repro.dram.geometry import DRAMGeometry
from repro.dram.trr import Trr, TrrConfig, TrrSampler
from repro.errors import DramError

GEOM = DRAMGeometry.small()


class TestTrrSampler:
    def test_observes_first_acts_after_ref(self):
        sampler = TrrSampler(TrrConfig(sampled_acts_after_ref=2, sample_prob=0.0), random.Random(0))
        sampler.observe_maybe(5)
        sampler.observe_maybe(5)
        sampler.observe_maybe(9)  # beyond the sampled window, ignored
        assert sampler.take_targets() == [5]

    def test_take_targets_resets_window(self):
        sampler = TrrSampler(TrrConfig(sampled_acts_after_ref=1, sample_prob=0.0), random.Random(0))
        sampler.observe_maybe(5)
        sampler.take_targets()
        sampler.observe_maybe(7)  # first after REF again: observed
        assert sampler.take_targets() == [7]

    def test_misra_gries_eviction_keeps_heavy_hitters(self):
        cfg = TrrConfig(slots=2, sampled_acts_after_ref=10**9, sample_prob=0.0)
        sampler = TrrSampler(cfg, random.Random(0))
        for _ in range(10):
            sampler.observe_maybe(1)
        sampler.observe_maybe(2)
        sampler.observe_maybe(3)  # decrements, evicts 2, row 1 survives
        targets = sampler.take_targets()
        assert 1 in targets

    def test_empty_sampler_has_no_targets(self):
        sampler = TrrSampler(TrrConfig(), random.Random(0))
        assert sampler.take_targets() == []


class TestTrr:
    def test_ref_refreshes_neighbors_of_sampled_rows(self):
        trr = Trr(GEOM, TrrConfig(sampled_acts_after_ref=4, sample_prob=0.0, neighbor_distance=1))
        trr.on_activate(0, 0, 10)
        victims = trr.on_ref(0, 0)
        assert victims == [9, 11]

    def test_neighbor_refresh_clipped_to_bank(self):
        trr = Trr(GEOM, TrrConfig(sampled_acts_after_ref=4, sample_prob=0.0, neighbor_distance=2))
        trr.on_activate(0, 0, 0)
        victims = trr.on_ref(0, 0)
        assert victims == [1, 2]

    def test_banks_have_independent_samplers(self):
        trr = Trr(GEOM, TrrConfig(sampled_acts_after_ref=4, sample_prob=0.0))
        trr.on_activate(0, 0, 10)
        assert trr.on_ref(0, 1) == []

    def test_uniform_hammer_gets_caught(self):
        """A naive double-sided hammer keeps getting sampled (it ACTs
        right after every REF), so TRR protects the victim."""
        trr = Trr(GEOM, TrrConfig(slots=4, sampled_acts_after_ref=2, sample_prob=0.0))
        caught = 0
        for _ in range(50):
            for _ in range(16):
                trr.on_activate(0, 0, 2)
                trr.on_activate(0, 0, 4)
            victims = trr.on_ref(0, 0)
            if 3 in victims:
                caught += 1
        assert caught >= 45  # caught essentially every window

    def test_decoy_pattern_evades_sampler(self):
        """Blacksmith-style evasion: put decoy ACTs in the sampled slots
        right after REF, hammer the real aggressors in the blind spot."""
        trr = Trr(
            GEOM,
            TrrConfig(slots=2, sampled_acts_after_ref=2, sample_prob=0.0),
        )
        protected = 0
        for _ in range(50):
            trr.on_activate(0, 0, 30)  # decoys occupy the sampled slots
            trr.on_activate(0, 0, 32)
            for _ in range(16):
                trr.on_activate(0, 0, 2)
                trr.on_activate(0, 0, 4)
            victims = trr.on_ref(0, 0)
            if 3 in victims:
                protected += 1
        assert protected == 0  # the true victim is never refreshed

    def test_refresh_counter(self):
        trr = Trr(GEOM, TrrConfig(sampled_acts_after_ref=4, sample_prob=0.0, neighbor_distance=1))
        trr.on_activate(0, 0, 10)
        trr.on_ref(0, 0)
        assert trr.neighbor_refreshes == 2


class TestEccClassification:
    def test_clean(self):
        assert classify_word(0) is EccOutcome.CLEAN

    def test_corrected(self):
        assert classify_word(1) is EccOutcome.CORRECTED

    def test_uncorrectable(self):
        assert classify_word(2) is EccOutcome.UNCORRECTABLE

    def test_silent(self):
        assert classify_word(3) is EccOutcome.SILENT
        assert classify_word(7) is EccOutcome.SILENT

    def test_negative_rejected(self):
        with pytest.raises(DramError):
            classify_word(-1)


class TestEccEngine:
    def setup_method(self):
        self.ecc = EccEngine()

    def test_single_bit_per_word_corrected(self):
        events = self.ecc.check_row_bits(0, 0, 5, {3, 64}, when=0.0)
        assert [e.outcome for e in events] == [
            EccOutcome.CORRECTED,
            EccOutcome.CORRECTED,
        ]
        assert self.ecc.stats.corrected == 2

    def test_double_bit_same_word_uncorrectable(self):
        events = self.ecc.check_row_bits(0, 0, 5, {3, 9}, when=0.0)
        assert events[0].outcome is EccOutcome.UNCORRECTABLE
        assert self.ecc.stats.uncorrectable == 1

    def test_triple_bit_silent(self):
        events = self.ecc.check_row_bits(0, 0, 5, {1, 2, 3}, when=0.0)
        assert events[0].outcome is EccOutcome.SILENT

    def test_word_boundaries(self):
        # Bits 63 and 64 are in different words: both correctable.
        events = self.ecc.check_row_bits(0, 0, 5, {63, 64}, when=0.0)
        assert all(e.outcome is EccOutcome.CORRECTED for e in events)

    def test_correctable_bits_excludes_multibit_words(self):
        healable = self.ecc.correctable_bits({3, 9, 128})
        assert healable == {128}

    def test_empty_flips_no_events(self):
        assert self.ecc.check_row_bits(0, 0, 5, set(), when=0.0) == []
