"""Shared test fixtures: tier markers and the differential replay harness.

**Tiering.**  Every test belongs to ``tier1`` (the fast CI gate) unless
it is explicitly marked ``tier2`` (differential fuzzing, perf guards).
CI runs ``pytest -m tier1`` as the gate and ``pytest -m tier2`` as a
separate job; running pytest with no marker filter still runs
everything.

**Differential harness.**  The batched engine (:mod:`repro.engine`) is
defined to be bit-for-bit equivalent to the scalar reference path.
:func:`replay_program` drives one seeded program of mixed hammer
patterns, fault injections, idle time, scrubs, and guest reads/writes
against a chosen backend and returns a comparable transcript;
``tests/test_differential.py`` replays the same seed through both
backends and diffs the transcripts.
"""

from __future__ import annotations

import os
import random
import signal
import threading

import pytest

from repro.dram.disturbance import DisturbanceProfile
from repro.dram.geometry import DRAMGeometry
from repro.dram.module import SimulatedDram
from repro.dram.trr import TrrConfig
from repro.errors import UncorrectableError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan


def pytest_collection_modifyitems(config, items):
    """Auto-mark: any test not explicitly tier2 belongs to tier1."""
    for item in items:
        if "tier2" not in item.keywords:
            item.add_marker(pytest.mark.tier1)


#: Per-test wall-clock ceiling (seconds).  The chaos tests spawn and
#: kill real worker processes; a supervisor bug that hangs a join must
#: fail the one test, not wedge the whole CI job.  Implemented with
#: SIGALRM (no pytest-timeout dependency); override with
#: ``REPRO_TEST_TIMEOUT_S=0`` to disable (e.g. under a debugger).
GLOBAL_TEST_TIMEOUT_S = float(os.environ.get("REPRO_TEST_TIMEOUT_S", "300"))


@pytest.fixture(autouse=True)
def _global_test_timeout(request):
    """Fail any test that exceeds the global wall-clock ceiling."""
    if (
        GLOBAL_TEST_TIMEOUT_S <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _expired(signum, frame):
        pytest.fail(
            f"{request.node.nodeid} exceeded the global "
            f"{GLOBAL_TEST_TIMEOUT_S:.0f}s test timeout",
            pytrace=False,
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, GLOBAL_TEST_TIMEOUT_S)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


# ---------------------------------------------------------------------------
# Differential replay harness (batched engine vs scalar golden reference)
# ---------------------------------------------------------------------------

#: Geometry for differential replays: several subarrays per bank and
#: several banks, but small enough that 50 fuzz seeds stay cheap.
DIFF_GEOMETRY = dict(rows_per_bank=128, rows_per_subarray=16)


def _build_dram(backend: str, seed: int, rng: random.Random) -> SimulatedDram:
    geom = DRAMGeometry.small(**DIFF_GEOMETRY)
    profile = DisturbanceProfile.test_scale(
        threshold_mean=float(rng.choice((60, 90, 150, 400)))
    )
    trr = TrrConfig() if rng.random() < 0.5 else None
    return SimulatedDram(
        geom, profile=profile, trr_config=trr, seed=seed, backend=backend
    )


def replay_program(backend: str, seed: int) -> dict:
    """Run one seeded mixed program against *backend*; return the
    observable transcript (flips, ECC events, TRR activity, counters,
    stored corruption, clock) for differential comparison.

    The program itself is a pure function of *seed* — both backends see
    byte-identical operation streams; only the engine under them
    differs.
    """
    rng = random.Random(seed)
    dram = _build_dram(backend, seed, rng)
    geom = dram.geom
    uncorrectable: list[tuple] = []

    injector = None
    if rng.random() < 0.5:
        plan = FaultPlan.ce_storm(
            0,
            rng.randrange(geom.banks_per_socket),
            rng.randrange(geom.rows_per_bank),
            errors=rng.randrange(2, 8),
            words_per_row=geom.row_bytes * 8 // 64,
            start=1e-6,
            interval=10e-6,
            seed=seed,
        )
        injector = FaultInjector(dram, plan).attach()

    for _ in range(rng.randrange(3, 7)):
        bank = rng.randrange(geom.banks_per_socket)
        shape = rng.randrange(3)
        if shape == 0:  # double-sided pair
            base = rng.randrange(2, geom.rows_per_bank - 2)
            rows = [base - 1, base + 1]
        elif shape == 1:  # many-sided
            base = rng.randrange(geom.rows_per_bank - 12)
            rows = [base + 2 * k for k in range(rng.randrange(3, 7))]
        else:  # single-row storm
            rows = [rng.randrange(geom.rows_per_bank)]
        rounds = rng.randrange(200, 1200) // len(rows)
        dram.activate_batch(0, bank, rows * rounds)

        roll = rng.random()
        if roll < 0.3:
            dram.advance_time(rng.uniform(0.0, 0.01))
        elif roll < 0.5:
            dram.patrol_scrub()
        elif roll < 0.8:
            hpa = rng.randrange(geom.total_bytes // 64) * 64
            if rng.random() < 0.5:
                dram.write(hpa, bytes([rng.randrange(256)]) * 64)
            else:
                try:
                    dram.read(hpa, 64)
                except UncorrectableError as exc:
                    uncorrectable.append(("read-ue", hpa, str(exc)))

    dram.patrol_scrub()
    if injector is not None:
        injector.detach()

    return {
        "flips": list(dram.flips_log),
        "stored_flips": {k: sorted(v) for k, v in dram._flips.items()},
        "ecc": [
            (e.socket, e.bank, e.row, e.word, e.outcome, e.flipped_bits, e.when)
            for e in dram.ecc.stats.events
        ],
        "counters": vars(dram.counters).copy(),
        "trr": (
            None
            if dram.trr is None
            else (dram.trr.neighbor_refreshes, {
                key: (s._counters.copy(), s._acts_since_ref)
                for key, s in dram.trr._samplers.items()
            })
        ),
        "uncorrectable": uncorrectable,
        "injected": None if injector is None else [str(e) for e in injector.events],
        "clock": dram.clock,
        "suppressed": dram.flips_suppressed,
    }


def diff_transcripts(
    seed: int,
    scalar: dict,
    batched: dict,
    labels: tuple[str, str] = ("scalar", "batched"),
) -> list[str]:
    """Human-readable field-level differences (empty = equivalent)."""
    a_name, b_name = labels
    problems = []
    for key in scalar:
        if scalar[key] != batched[key]:
            problems.append(
                f"seed={seed}: field {key!r} diverged\n"
                f"  {a_name}: {scalar[key]!r}\n"
                f"  {b_name}: {batched[key]!r}"
            )
    return problems
