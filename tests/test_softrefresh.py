"""Unit tests for the §8.3 software-refresh study."""

import pytest

from repro.core.softrefresh import (
    JitterProfile,
    RefreshLog,
    RefreshScheme,
    compare_schemes,
    simulate_refresh,
)
from repro.errors import ReproError


class TestSimulation:
    def test_timer_task_min_interval_is_1ms(self):
        """§8.3: 'we observed a minimum of 1 ms between software
        refreshes due to Linux scheduling semantics'."""
        log = simulate_refresh(RefreshScheme.TIMER_TASK, duration_s=20.0, seed=1)
        assert log.min_interval_ms >= 1.0

    def test_timer_task_observes_32ms_gaps(self):
        """§8.3: 'even observing a period greater than 32 ms'."""
        log = simulate_refresh(RefreshScheme.TIMER_TASK, duration_s=60.0, seed=1)
        assert log.max_interval_ms > 32.0

    def test_timer_task_misses_deadlines(self):
        log = simulate_refresh(RefreshScheme.TIMER_TASK, duration_s=10.0, seed=2)
        assert log.missed_deadlines > 0
        assert log.vulnerable

    def test_tick_irq_still_misses(self):
        """Running in the IRQ helps but ticks get delayed/dropped."""
        log = simulate_refresh(RefreshScheme.TICK_IRQ, duration_s=60.0, seed=3)
        assert log.missed_deadlines > 0
        assert log.max_interval_ms > 2.0

    def test_tick_irq_tighter_than_task(self):
        task = simulate_refresh(RefreshScheme.TIMER_TASK, duration_s=30.0, seed=4)
        irq = simulate_refresh(RefreshScheme.TICK_IRQ, duration_s=30.0, seed=4)
        assert irq.miss_rate < task.miss_rate

    def test_guard_rows_never_vulnerable(self):
        log = simulate_refresh(RefreshScheme.GUARD_ROWS, duration_s=60.0)
        assert not log.vulnerable
        assert log.refreshes == 0

    def test_deterministic(self):
        a = simulate_refresh(RefreshScheme.TIMER_TASK, duration_s=5.0, seed=7)
        b = simulate_refresh(RefreshScheme.TIMER_TASK, duration_s=5.0, seed=7)
        assert a.intervals_ms == b.intervals_ms

    def test_rejects_bad_args(self):
        with pytest.raises(ReproError):
            simulate_refresh(RefreshScheme.TIMER_TASK, duration_s=0)
        with pytest.raises(ReproError):
            simulate_refresh(RefreshScheme.TIMER_TASK, deadline_ms=0)


class TestCompare:
    def test_all_schemes_present(self):
        results = compare_schemes(duration_s=5.0, seed=5)
        assert set(results) == set(RefreshScheme)

    def test_only_guard_rows_safe(self):
        results = compare_schemes(duration_s=60.0, seed=6)
        assert not results[RefreshScheme.GUARD_ROWS].vulnerable
        assert results[RefreshScheme.TIMER_TASK].vulnerable
        assert results[RefreshScheme.TICK_IRQ].vulnerable


class TestLogProperties:
    def test_empty_log(self):
        log = RefreshLog(scheme=RefreshScheme.GUARD_ROWS, deadline_ms=1.0)
        assert log.miss_rate == 0.0
        assert log.max_interval_ms == 0.0
        assert log.min_interval_ms == 0.0

    def test_profiles_distinct(self):
        task = JitterProfile.task_scheduling()
        irq = JitterProfile.tick_irq()
        assert task.base_jitter_ms > irq.base_jitter_ms
