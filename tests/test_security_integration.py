"""End-to-end security experiments (paper §7.1, Table 3).

These are the repository's headline integration tests: a Blacksmith
campaign from inside a guest, on the baseline and on Siloz, across a
fleet of DIMM susceptibility profiles — plus the EPT guard-row
experiment.  They mirror the benchmarks in ``benchmarks/`` but at a
budget suitable for the test suite.
"""

import pytest

from repro.attack import attack_from_vm
from repro.attack.hammer import hammer_pattern_rows
from repro.core import EptProtection, SilozConfig, SilozHypervisor, audit_hypervisor
from repro.core.groups import ept_block_rows, ept_rows
from repro.dram.disturbance import DisturbanceProfile
from repro.dram.trr import TrrConfig
from repro.errors import EptIntegrityError
from repro.hv import BaselineHypervisor, Machine, VmSpec
from repro.units import KiB, MiB


def siloz_env(seed=0, profile=None, trr=False):
    machine = Machine.small(
        seed=seed,
        profile=profile,
        trr_config=TrrConfig() if trr else None,
    )
    hv = SilozHypervisor.boot(machine)
    return hv


class TestHammeringContainment:
    """Table 3: flips never leave the attacker's subarray group."""

    def test_containment_single_dimm(self):
        hv = siloz_env(seed=1)
        attacker = hv.create_vm(VmSpec(name="attacker", memory_bytes=2 * MiB))
        victim = hv.create_vm(VmSpec(name="victim", memory_bytes=2 * MiB))
        victim.write(0x0, b"\xAA" * 4096)
        outcome = attack_from_vm(hv, attacker, seed=1, pattern_budget=30)
        assert outcome.report.flip_count > 0, "attack must actually flip bits"
        assert outcome.contained
        assert outcome.victim_flips == {}
        # Victim's data is intact.
        assert victim.read(0x0, 4096) == b"\xAA" * 4096
        assert audit_hypervisor(hv) == []

    @pytest.mark.parametrize("dimm", DisturbanceProfile.dimm_fleet()[:3])
    def test_containment_across_dimm_profiles(self, dimm):
        """Per-DIMM rows of Table 3 (A-C here; the bench runs all six)."""
        hv = siloz_env(seed=11, profile=dimm)
        attacker = hv.create_vm(VmSpec(name="attacker", memory_bytes=2 * MiB))
        hv.create_vm(VmSpec(name="victim", memory_bytes=2 * MiB))
        outcome = attack_from_vm(hv, attacker, seed=11, pattern_budget=40)
        assert outcome.report.flip_count > 0, f"DIMM {dimm.name}: no flips"
        assert outcome.contained, f"DIMM {dimm.name}: containment broken"

    def test_containment_despite_trr(self):
        """Blacksmith's REF-synced patterns beat TRR; Siloz still
        contains every flip they cause."""
        hv = siloz_env(
            seed=3,
            trr=True,
            profile=DisturbanceProfile.test_scale(threshold_mean=400.0),
        )
        attacker = hv.create_vm(VmSpec(name="attacker", memory_bytes=2 * MiB))
        outcome = attack_from_vm(hv, attacker, seed=3, pattern_budget=60)
        assert outcome.report.flip_count > 0
        assert outcome.contained

    def test_rowpress_containment(self):
        """§2.5: RowPress (long row-open times) is disturbance of the
        same subarray-bounded kind; Siloz contains it identically."""
        hv = siloz_env(seed=21)
        attacker = hv.create_vm(VmSpec(name="attacker", memory_bytes=2 * MiB))
        hv.create_vm(VmSpec(name="victim", memory_bytes=2 * MiB))
        geom = hv.machine.geom
        # Few activations, long open times: classic RowPress shape.
        flips = attacker.hammer(0x0, activations=40, open_seconds=0.04)
        assert flips, "RowPress pressure should flip bits"
        groups = {g for _, g in attacker.reserved_groups}
        for flip in hv.machine.dram.flips_log:
            assert flip.row // geom.rows_per_subarray in groups
        assert audit_hypervisor(hv) == []

    def test_patrol_scrub_finds_no_strays(self):
        """§7.1 leaves the system 24 h so scrubbing catches stragglers:
        scrub the module and confirm every logged event is inside the
        attacker's groups."""
        hv = siloz_env(seed=4)
        attacker = hv.create_vm(VmSpec(name="attacker", memory_bytes=2 * MiB))
        outcome = attack_from_vm(hv, attacker, seed=4, pattern_budget=30)
        assert outcome.report.flip_count > 0
        geom = hv.machine.geom
        groups = set(outcome.attacker_groups)
        for event in hv.machine.dram.patrol_scrub():
            group = (event.socket, event.row // geom.rows_per_subarray)
            assert group in groups


class TestBaselineVulnerability:
    """The contrast row: baseline lets flips corrupt a co-located VM."""

    def test_victim_corruption_on_baseline(self):
        hv = BaselineHypervisor(Machine.small(seed=5), backing_page_bytes=64 * KiB)
        attacker = hv.create_vm(VmSpec(name="attacker", memory_bytes=2 * MiB))
        victim = hv.create_vm(VmSpec(name="victim", memory_bytes=2 * MiB))
        outcome = attack_from_vm(hv, attacker, seed=5, pattern_budget=80)
        assert outcome.victim_flips.get("victim", 0) > 0


class TestEptProtection:
    """§7.1 'EPT Bit Flip Prevention': guarded rows don't flip."""

    def test_guard_rows_block_ept_flips(self):
        hv = siloz_env(seed=6)
        vm = hv.create_vm(VmSpec(name="vm", memory_bytes=2 * MiB))
        geom = hv.machine.geom
        ept_rgs = ept_rows(hv.config, geom)
        block = ept_block_rows(hv.config, geom)
        # Hammer as close to the EPT rows as allocatable memory permits:
        # the nearest usable rows in the same subarray (just outside the
        # reserved block).
        nearest = [block.stop, block.stop + 1]
        dram = hv.machine.dram
        hammer_pattern_rows(dram, 0, 0, nearest, rounds=4000)
        assert dram.flips_log, "hammering near the block must flip something"
        flipped_rows = {f.row for f in dram.flips_log}
        assert not flipped_rows & set(ept_rgs), "EPT rows must never flip"
        # And the VM still translates correctly.
        vm.write(0x1000, b"intact")
        assert vm.read(0x1000, 6) == b"intact"

    def test_unprotected_rows_do_flip(self):
        """Control group: the same hammering against unguarded rows in
        the same subarray group does flip its neighbours."""
        hv = siloz_env(seed=6)
        dram = hv.machine.dram
        geom = hv.machine.geom
        # Pick rows deep in the host group's second subarray (no guards).
        base = geom.rows_per_subarray + 16
        hammer_pattern_rows(dram, 0, 0, [base, base + 2], rounds=4000)
        flipped = {f.row for f in dram.flips_log}
        assert any(base - 2 <= r <= base + 4 for r in flipped)

    def test_guard_margin_exceeds_blast_radius(self):
        hv = siloz_env()
        cfg = hv.config
        profile = hv.machine.dram.disturbance.profile
        assert cfg.ept_row_group_offset >= profile.blast_radius
        assert (
            cfg.ept_block_row_groups
            - cfg.ept_row_group_offset
            - cfg.ept_row_group_count
            >= profile.blast_radius
        )

    def test_no_protection_mode_is_attackable(self):
        """EptProtection.NONE: EPT pages sit in the host pool next to
        allocatable rows — a targeted hammer flips an EPT entry and the
        walk silently returns a different frame (§5.4's threat)."""
        machine = Machine.small(seed=8)
        cfg = SilozConfig.scaled_for(machine.geom, ept_protection=EptProtection.NONE)
        hv = SilozHypervisor.boot(machine, cfg)
        vm = hv.create_vm(VmSpec(name="vm", memory_bytes=2 * MiB))
        dram = hv.machine.dram
        # EPT table pages were kmalloc'd from the host node: find a row
        # holding one and hammer its neighbours (ECC off to model the
        # multi-bit outcome directly).
        page = vm.ept.table_pages[-1]
        media = dram.mapping.decode(page)
        bank = media.socket_bank_index(hv.machine.geom)
        row = media.row
        rows_per_bank = hv.machine.geom.rows_per_bank
        aggressors = [r for r in (row - 1, row + 1) if 0 <= r < rows_per_bank]
        hammer_pattern_rows(dram, 0, bank, aggressors, rounds=6000)
        flipped = dram.flip_bits_at(0, bank, row)
        assert flipped, "unprotected EPT row must take flips"

    def test_secure_ept_detects_corruption_on_use(self):
        machine = Machine.small(seed=9)
        cfg = SilozConfig.scaled_for(
            machine.geom, ept_protection=EptProtection.SECURE_EPT
        )
        hv = SilozHypervisor.boot(machine, cfg)
        vm = hv.create_vm(VmSpec(name="vm", memory_bytes=2 * MiB))
        dram = hv.machine.dram
        addr = vm.ept.leaf_entry_addr(0x0)
        media = dram.mapping.decode(addr)
        bank = media.socket_bank_index(machine.geom)
        # Corrupt the entry beyond ECC (3 bits in one word).
        for bit in (12, 13, 14):
            dram._toggle_bit(0, bank, media.row, media.col * 8 + bit)
        with pytest.raises(EptIntegrityError):
            vm.read(0x0, 8)
