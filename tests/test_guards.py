"""Tests for the half-row remap guard analysis (paper §5.4's b=32, o=12
justification)."""

import pytest

from repro.core import SilozConfig
from repro.core.guards import (
    assert_remap_safe,
    block_is_remap_safe,
    edge_margin,
    internal_positions,
)
from repro.errors import PlacementError


class TestInternalPositions:
    def test_paper_offset_12_maps_to_12_and_20(self):
        """Mirroring swaps <b3,b4>, inversion flips b3,b4 (in-block):
        offset 12 = 0b01100 lands at {12, 20} — both mid-block, the
        'roughly split above and below' of §5.4."""
        assert internal_positions(12, 32) == {12, 20}

    def test_low_offsets_can_reach_high_positions(self):
        # Offset 2 = 0b00010: inversion flips b3,b4 -> 2 ^ 24 = 26, a
        # near-edge position; this is why naive low offsets are unsafe.
        assert internal_positions(2, 32) == {2, 26}
        # Offset 8 = 0b01000: b3 set -> mirroring/inversion move it too.
        assert len(internal_positions(8, 32)) > 1

    def test_positions_within_block(self):
        for offset in range(32):
            for pos in internal_positions(offset, 32):
                assert 0 <= pos < 32

    def test_small_block_positions_fixed(self):
        # 8-row blocks: in-block bits b0..b2 are untouched by mirroring
        # (pairs start at b3) and inversion (bits b3+).
        for offset in range(8):
            assert internal_positions(offset, 8) == {offset}

    def test_rejects_non_power_of_two(self):
        with pytest.raises(PlacementError):
            internal_positions(0, 24)

    def test_rejects_out_of_block(self):
        with pytest.raises(PlacementError):
            internal_positions(32, 32)


class TestMargins:
    def test_paper_choice_has_wide_margins(self):
        # {12, 20}: min(12, 19, 20, 11) = 11 guard rows either side.
        assert edge_margin(12, 32) == 11

    def test_edge_offsets_have_no_margin(self):
        assert edge_margin(0, 32) == 0
        assert edge_margin(31, 32) == 0

    def test_paper_config_remap_safe(self):
        assert block_is_remap_safe(12, 1, block_rows=32, radius=4)

    def test_naive_offset_unsafe_despite_simple_margins(self):
        """Offset 4 has 4 guards below (enough naively) but inversion
        can move it: check whether remap analysis catches narrow cases
        that the simple margin check would pass."""
        # offset 4 = 0b00100 -> mirror swaps b3,b4 (both 0... b4=0,b3=0)
        # stays; inversion flips b3,b4 -> 4 ^ 24 = 28 -> margin 3 < 4.
        assert internal_positions(4, 32) == {4, 28}
        assert not block_is_remap_safe(4, 1, block_rows=32, radius=4)

    def test_assert_remap_safe_message(self):
        with pytest.raises(PlacementError, match="half-row remaps"):
            assert_remap_safe(4, 1, block_rows=32, radius=4)

    def test_count_must_be_positive(self):
        with pytest.raises(PlacementError):
            block_is_remap_safe(12, 0)

    def test_multi_row_ept_block_safe(self):
        # The scaled configs use up to 4 EPT rows at offset 12: 12..15
        # map within {12..15, 20..23}; margins >= 8.
        assert block_is_remap_safe(12, 4, block_rows=32, radius=4)


class TestConfigIntegration:
    def test_paper_default_passes(self):
        SilozConfig.paper_default()  # must not raise

    def test_remap_unsafe_offset_rejected(self):
        """o=4 passes the naive margin rule (4 >= 4) but fails the
        remap analysis — the config must reject it."""
        with pytest.raises(PlacementError, match="half-row"):
            SilozConfig(ept_block_row_groups=32, ept_row_group_offset=4)

    def test_non_power_of_two_block_skips_remap_analysis(self):
        # Falls back to the simple margin rule only.
        SilozConfig(ept_block_row_groups=24, ept_row_group_offset=12)
