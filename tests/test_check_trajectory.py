"""Tests for the CI perf-trajectory gate (benchmarks/check_trajectory.py)."""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

_PATH = pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "check_trajectory.py"
_spec = importlib.util.spec_from_file_location("check_trajectory", _PATH)
check_trajectory = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_trajectory)


def _bench_json(tmp_path, name: str, speedup: float | None) -> pathlib.Path:
    path = tmp_path / name
    doc = {"bench": "engine"}
    if speedup is not None:
        doc["table3_containment"] = {"speedup": speedup}
    path.write_text(json.dumps(doc))
    return path


class TestCheckTrajectory:
    def test_passes_within_tolerance(self, tmp_path, capsys):
        prev = _bench_json(tmp_path, "prev.json", 2.5)
        cur = _bench_json(tmp_path, "cur.json", 2.1)
        assert check_trajectory.main([str(prev), str(cur)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_fails_on_regression(self, tmp_path, capsys):
        prev = _bench_json(tmp_path, "prev.json", 3.0)
        cur = _bench_json(tmp_path, "cur.json", 2.0)  # -33% > 20% allowed
        assert check_trajectory.main([str(prev), str(cur)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_custom_max_regression(self, tmp_path):
        prev = _bench_json(tmp_path, "prev.json", 3.0)
        cur = _bench_json(tmp_path, "cur.json", 2.0)
        argv = [str(prev), str(cur), "--max-regression", "0.5"]
        assert check_trajectory.main(argv) == 0

    def test_missing_previous_is_not_an_error(self, tmp_path, capsys):
        cur = _bench_json(tmp_path, "cur.json", 2.0)
        missing = tmp_path / "nope.json"
        assert check_trajectory.main([str(missing), str(cur)]) == 0
        assert "no previous point" in capsys.readouterr().out

    def test_missing_current_fails(self, tmp_path):
        prev = _bench_json(tmp_path, "prev.json", 2.0)
        empty = _bench_json(tmp_path, "cur.json", None)
        assert check_trajectory.main([str(prev), str(empty)]) == 1

    def test_appends_trajectory_point(self, tmp_path):
        prev = _bench_json(tmp_path, "prev.json", 2.5)
        cur = _bench_json(tmp_path, "cur.json", 2.4)
        check_trajectory.main([str(prev), str(cur)])
        doc = json.loads(cur.read_text())
        (point,) = doc["trajectory"]
        assert point["previous_speedup"] == 2.5
        assert point["current_speedup"] == 2.4
        assert point["ok"] is True


def _full_bench_json(tmp_path, name: str, **overrides) -> pathlib.Path:
    """A bench point carrying every tracked metric (overridable)."""
    doc = {
        "bench": "engine",
        "table3_containment": {
            "speedup": overrides.get("speedup", 4.0),
            "vectorized_speedup": overrides.get("vectorized_speedup", 2.5),
        },
        "fig5_throughput": {"speedup": overrides.get("fig5", 2.2)},
        "tracing": {
            "disabled_overhead_pct": overrides.get("overhead", 0.1),
        },
    }
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return path


class TestTrackedMetrics:
    def test_all_tracked_metrics_gated(self, tmp_path, capsys):
        prev = _full_bench_json(tmp_path, "prev.json")
        cur = _full_bench_json(tmp_path, "cur.json")
        assert check_trajectory.main([str(prev), str(cur)]) == 0
        out = capsys.readouterr().out
        assert "table3_containment.vectorized_speedup" in out
        assert "fig5_throughput" in out
        assert "tracing.disabled_overhead_pct" in out

    def test_vectorized_speedup_regression_fails(self, tmp_path, capsys):
        prev = _full_bench_json(tmp_path, "prev.json", vectorized_speedup=3.0)
        cur = _full_bench_json(tmp_path, "cur.json", vectorized_speedup=2.0)
        assert check_trajectory.main([str(prev), str(cur)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_fig5_regression_below_clamp_fails(self, tmp_path, capsys):
        # fig5 is noisy across runners, so its relative floor is clamped
        # at 1.30x — but dropping below the clamp itself still fails.
        prev = _full_bench_json(tmp_path, "prev.json", fig5=3.0)
        cur = _full_bench_json(tmp_path, "cur.json", fig5=1.2)
        assert check_trajectory.main([str(prev), str(cur)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_fig5_floor_is_clamped_for_cross_runner_variance(
        self, tmp_path, capsys
    ):
        # A lucky 3.0x previous point must not ratchet the floor past
        # the 1.30x clamp: an honest 2.0x on slower hardware passes.
        prev = _full_bench_json(tmp_path, "prev.json", fig5=3.0)
        cur = _full_bench_json(tmp_path, "cur.json", fig5=2.0)
        assert check_trajectory.main([str(prev), str(cur)]) == 0
        out = capsys.readouterr().out
        assert "floor clamped" in out
        assert "1.30" in out

    def test_unclamped_metric_floor_still_ratchets(self, tmp_path):
        # table3 has no clamp entry: the plain relative floor applies.
        prev = _full_bench_json(tmp_path, "prev.json", speedup=3.0)
        cur = _full_bench_json(tmp_path, "cur.json", speedup=2.0)
        assert check_trajectory.main([str(prev), str(cur)]) == 1

    def test_tracing_ceiling_clamped_against_lucky_negative_point(
        self, tmp_path, capsys
    ):
        # A lucky -1.33% previous point must not force future runs to
        # also measure negative: the ceiling never drops below +1pp.
        prev = _full_bench_json(tmp_path, "prev.json", overhead=-1.33)
        cur = _full_bench_json(tmp_path, "cur.json", overhead=0.8)
        assert check_trajectory.main([str(prev), str(cur)]) == 0
        assert "ceiling clamped" in capsys.readouterr().out

    def test_tracing_overhead_rise_fails(self, tmp_path, capsys):
        # "down" metric: overhead climbing past previous + 1pt fails.
        prev = _full_bench_json(tmp_path, "prev.json", overhead=0.2)
        cur = _full_bench_json(tmp_path, "cur.json", overhead=1.9)
        assert check_trajectory.main([str(prev), str(cur)]) == 1
        assert "tracing.disabled_overhead_pct" in capsys.readouterr().out

    def test_tracing_overhead_within_point_passes(self, tmp_path):
        prev = _full_bench_json(tmp_path, "prev.json", overhead=-0.3)
        cur = _full_bench_json(tmp_path, "cur.json", overhead=0.5)
        assert check_trajectory.main([str(prev), str(cur)]) == 0

    def test_new_metric_without_previous_is_accepted(self, tmp_path, capsys):
        # Old points predate vectorized_speedup; first run must pass.
        prev = _bench_json(tmp_path, "prev.json", 4.0)
        cur = _full_bench_json(tmp_path, "cur.json")
        assert check_trajectory.main([str(prev), str(cur)]) == 0
        assert "accepted" in capsys.readouterr().out

    def test_single_key_mode_unchanged(self, tmp_path, capsys):
        prev = _full_bench_json(tmp_path, "prev.json")
        cur = _full_bench_json(tmp_path, "cur.json")
        argv = [str(prev), str(cur), "--key", "table3_containment"]
        assert check_trajectory.main(argv) == 0
        out = capsys.readouterr().out
        assert "vectorized_speedup" not in out


def _skip_bench_json(tmp_path, name: str, entry: dict | None) -> pathlib.Path:
    path = tmp_path / name
    doc = {"bench": "fleet"}
    if entry is not None:
        doc["fleet_campaign"] = entry
    path.write_text(json.dumps(doc))
    return path


class TestConsecutiveSkips:
    """A skip marker passes the gate once; two in a row on a multi-core
    runner mean the metric is being silently starved and must fail."""

    _ARGS = ["--key", "fleet_campaign"]

    def test_single_skip_passes(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setattr(check_trajectory.os, "cpu_count", lambda: 4)
        prev = _skip_bench_json(tmp_path, "prev.json", {"speedup": 2.4})
        cur = _skip_bench_json(
            tmp_path, "cur.json", {"skipped": "single-core runner (1 cpu)"}
        )
        assert check_trajectory.main([str(prev), str(cur), *self._ARGS]) == 0
        assert "SKIPPED" in capsys.readouterr().out

    def test_two_consecutive_skips_fail_on_multicore(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setattr(check_trajectory.os, "cpu_count", lambda: 4)
        prev = _skip_bench_json(
            tmp_path, "prev.json", {"skipped": "single-core runner (1 cpu)"}
        )
        cur = _skip_bench_json(
            tmp_path, "cur.json", {"skipped": "single-core runner (1 cpu)"}
        )
        assert check_trajectory.main([str(prev), str(cur), *self._ARGS]) == 1
        out = capsys.readouterr().out
        assert "2+ consecutive" in out and "FAIL" in out

    def test_two_consecutive_skips_pass_on_single_core(
        self, tmp_path, capsys, monkeypatch
    ):
        # A genuinely single-core gate runner cannot demand the metric.
        monkeypatch.setattr(check_trajectory.os, "cpu_count", lambda: 1)
        prev = _skip_bench_json(
            tmp_path, "prev.json", {"skipped": "single-core runner (1 cpu)"}
        )
        cur = _skip_bench_json(
            tmp_path, "cur.json", {"skipped": "single-core runner (1 cpu)"}
        )
        assert check_trajectory.main([str(prev), str(cur), *self._ARGS]) == 0
        assert "SKIPPED" in capsys.readouterr().out

    def test_skip_with_missing_previous_passes(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setattr(check_trajectory.os, "cpu_count", lambda: 4)
        cur = _skip_bench_json(
            tmp_path, "cur.json", {"skipped": "single-core runner (1 cpu)"}
        )
        missing = tmp_path / "nope.json"
        assert check_trajectory.main([str(missing), str(cur), *self._ARGS]) == 0
        assert "SKIPPED" in capsys.readouterr().out
