"""Tests for live page migration: EPT remapping, the runtime
migrate-and-offline path, deferral/retry, and the end-to-end CE-storm
scenario's acceptance criteria."""

import pytest

from repro.core import SilozHypervisor, audit_hypervisor
from repro.core.remediation import MigrationPolicy, offline_row_group_live
from repro.dram.mapping import AddressRange
from repro.errors import OfflineError, OutOfMemoryError
from repro.faults import run_ce_storm_scenario
from repro.hv import Machine, VmSpec
from repro.hv.health import HealthState
from repro.hv.vm import VmState
from repro.mm.offline import OfflineReason
from repro.units import KiB, MiB, PAGE_2M, PAGE_4K


def boot(seed=71):
    return SilozHypervisor.boot(Machine.small(seed=seed))


class TestEptRemapRange:
    def test_4k_leaves_retargeted(self):
        hv = boot()
        vm = hv.create_vm(VmSpec(name="tenant", memory_bytes=2 * MiB))
        old = vm.backing[0].start
        size = hv.backing_page_bytes
        node = hv.topology.node_of_addr(old)
        new = node.alloc_bytes(size)
        moved = vm.ept.remap_range(old, size, new)
        assert moved == size
        assert vm.translate(0x0) == new
        assert vm.translate(size // 2) == new + size // 2
        # GPAs behind other blocks are untouched.
        assert vm.translate(size) not in AddressRange(new, new + size)

    def test_remap_miss_returns_zero(self):
        hv = boot()
        vm = hv.create_vm(VmSpec(name="tenant", memory_bytes=2 * MiB))
        far = vm.backing[0].end + 8 * MiB
        assert vm.ept.remap_range(far, 64 * KiB, far + 64 * KiB) == 0

    def test_large_leaf_split_on_partial_overlap(self):
        from repro.ept.table import ExtendedPageTable
        from repro.mm.numa import NodeKind

        hv = boot()
        # A free guest-reserved node: the host node is too fragmented
        # for a contiguous 2 MiB block after boot-time offlining.
        node = None
        backing = None
        for cand in hv.topology.nodes_of_kind(NodeKind.GUEST_RESERVED):
            try:
                backing = cand.alloc_bytes(PAGE_2M)
            except OutOfMemoryError:
                continue
            node = cand
            break
        assert node is not None
        ept = ExtendedPageTable(
            hv.machine.dram, lambda: node.alloc_bytes(PAGE_4K)
        )
        ept.map(0, backing, PAGE_2M)  # one 2 MiB leaf
        new = node.alloc_bytes(64 * KiB)
        old = backing + 64 * KiB
        moved = ept.remap_range(old, 64 * KiB, new)
        assert moved == 64 * KiB
        # The overlapped 64 KiB window now points at the new frames...
        assert ept.translate(64 * KiB) == new
        assert ept.translate(128 * KiB - 1) == new + 64 * KiB - 1
        # ...while the rest of the split leaf stays on the old frames.
        assert ept.translate(0) == backing
        assert ept.translate(128 * KiB) == backing + 128 * KiB
        assert ept.translate(PAGE_2M - 1) == backing + PAGE_2M - 1
        assert ept.mapped_bytes == PAGE_2M

    def test_alignment_enforced(self):
        hv = boot()
        vm = hv.create_vm(VmSpec(name="tenant", memory_bytes=2 * MiB))
        from repro.errors import EptError

        with pytest.raises(EptError):
            vm.ept.remap_range(1, PAGE_4K, 0)


class TestLiveOfflining:
    def setup_method(self):
        self.hv = boot()
        self.vm = self.hv.create_vm(VmSpec(name="tenant", memory_bytes=2 * MiB))
        self.hpa = self.vm.backing[0].start
        media = self.hv.machine.mapping.decode(self.hpa)
        self.socket, self.row = media.socket, media.row
        self.rg = self.hv.machine.mapping.row_group_ranges(self.socket, self.row)[0]

    def test_migrates_data_and_offlines(self):
        self.vm.write(0x40, b"precious bytes")
        report = offline_row_group_live(self.hv, self.socket, self.row)
        assert report.complete
        assert len(report.migrated) == 1
        moved = report.migrated[0]
        assert moved.vm == "tenant"
        assert AddressRange(moved.old, moved.old + moved.size) == self.rg
        # Mapping moved, data survived, VM still runs.
        assert self.vm.translate(0x0) == moved.new
        assert self.vm.read(0x40, 14) == b"precious bytes"
        assert self.vm.state is VmState.RUNNING
        # Registry: recorded under CE_STORM, index answers O(log n) queries.
        assert self.hv.offline.is_offline(self.rg.start)
        assert self.hv.offline.is_offline(self.rg.end - 1)
        assert not self.hv.offline.is_offline(self.rg.end)
        assert self.hv.offline.total_bytes(OfflineReason.CE_STORM) == self.rg.size

    def test_migration_preserves_isolation(self):
        report = offline_row_group_live(self.hv, self.socket, self.row)
        assert report.violations == []
        new = report.migrated[0].new
        group = self.hv.machine.mapping.subarray_group_of_hpa(new)
        assert group in self.vm.reserved_groups
        assert audit_hypervisor(self.hv) == []

    def test_already_offline_is_noop(self):
        offline_row_group_live(self.hv, self.socket, self.row)
        again = offline_row_group_live(self.hv, self.socket, self.row)
        assert again.already_offline
        assert not again.migrated and not again.deferred

    def test_destroy_vm_after_migration(self):
        report = offline_row_group_live(self.hv, self.socket, self.row)
        assert report.complete
        self.hv.destroy_vm("tenant")  # frees the *new* frames cleanly
        assert self.vm.state is VmState.SHUTDOWN

    def test_free_row_group_offlines_without_migration(self):
        # A row group in the free part of the tenant's node: everything
        # is quarantined+finalized, nothing needs to move.
        free_hpa = None
        node = self.hv.topology.node(self.vm.node_ids[0])
        for row in range(self.hv.machine.geom.rows_per_bank):
            rg = self.hv.machine.mapping.row_group_ranges(0, row)[0]
            inside = any(rg.start >= r.start and rg.end <= r.end for r in node.ranges)
            if inside and not node.allocator.allocated_blocks_within(rg):
                if not self.hv.offline.is_offline(rg.start):
                    free_hpa = rg
                    break
        assert free_hpa is not None
        media = self.hv.machine.mapping.decode(free_hpa.start)
        report = offline_row_group_live(self.hv, media.socket, media.row)
        assert report.complete
        assert not report.migrated
        assert report.offlined_bytes == free_hpa.size


class TestDeferralAndRetry:
    def test_defers_when_no_frames_then_retries(self):
        hv = boot()
        vm = hv.create_vm(VmSpec(name="tenant", memory_bytes=2 * MiB))
        monitor = hv.enable_health_monitoring(auto_remediate=False)
        hpa = vm.backing[0].start
        media = hv.machine.mapping.decode(hpa)
        rg = hv.machine.mapping.row_group_ranges(media.socket, media.row)[0]
        # Exhaust every node the VM could allocate replacements from.
        hoard = []
        for nid in vm.node_ids:
            node = hv.topology.node(nid)
            while True:
                try:
                    hoard.append(node.alloc_bytes(hv.backing_page_bytes))
                except OutOfMemoryError:
                    break
        policy = MigrationPolicy(max_retries=1, backoff_s=0.0001)
        report = offline_row_group_live(
            hv, media.socket, media.row, policy=policy
        )
        assert not report.complete
        assert any("no replacement frames" in d.why for d in report.deferred)
        assert hv.offline.pending and hv.offline.pending[0].range == rg
        assert not hv.offline.is_offline(rg.start)
        # The range stays quarantined: nothing new can land there.
        node = hv.topology.node_of_addr(rg.start)
        assert node.allocator.quarantined_bytes == 0  # fully allocated rg
        # Free the hoard; the deferred offline now completes on retry.
        for addr in hoard:
            hv.topology.free_addr(addr)
        reports = monitor.retry_deferred()
        assert len(reports) == 1 and reports[0].complete
        assert hv.offline.pending == []
        assert hv.offline.is_offline(rg.start)
        assert monitor.state_of(media.socket, media.row) is HealthState.OFFLINED
        assert vm.read(0x0, 8)  # still readable through the remapped EPT

    def test_offline_retired_rejects_busy_range(self):
        hv = boot()
        vm = hv.create_vm(VmSpec(name="tenant", memory_bytes=2 * MiB))
        hpa = vm.backing[0].start
        rg = AddressRange(hpa, hpa + hv.backing_page_bytes)
        node = hv.topology.node_of_addr(hpa)
        with pytest.raises(OfflineError):
            hv.offline.offline_retired(node, rg, OfflineReason.CE_STORM)


class TestOfflineRegistryIndex:
    def test_bisect_index_matches_ranges(self):
        hv = boot()
        entries = hv.offline.entries
        assert entries  # guard rows exist at boot
        for e in entries[:10]:
            assert hv.offline.is_offline(e.range.start)
            assert hv.offline.is_offline(e.range.end - 1)
        # Probe points just outside each entry that no entry covers.
        covered = lambda a: any(a in e.range for e in entries)
        for e in entries[:10]:
            for probe in (e.range.start - 1, e.range.end):
                assert hv.offline.is_offline(probe) == covered(probe)

    def test_index_merges_adjacent(self):
        from repro.mm.offline import OfflineRegistry

        reg = OfflineRegistry()
        reg._index_add(AddressRange(0x2000, 0x3000))
        reg._index_add(AddressRange(0x0000, 0x1000))
        reg._index_add(AddressRange(0x1000, 0x2000))  # bridges the two
        assert reg._index_starts == [0x0000]
        assert reg._index_ends == [0x3000]
        assert reg.is_offline(0x2fff)
        assert not reg.is_offline(0x3000)


class TestScenario:
    def test_ce_storm_acceptance(self):
        result = run_ce_storm_scenario(seed=11)
        assert result.success
        assert result.data_intact
        assert result.row_group_offlined
        assert result.no_vm_killed
        assert result.audit_clean
        assert result.migrated_blocks >= 1

    def test_same_seed_replays_identically(self):
        a = run_ce_storm_scenario(seed=3)
        b = run_ce_storm_scenario(seed=3)
        assert a.transcript == b.transcript
        assert a.replay_key() == b.replay_key()

    def test_different_seed_different_transcript(self):
        a = run_ce_storm_scenario(seed=3)
        b = run_ce_storm_scenario(seed=4)
        assert a.replay_key() != b.replay_key()
