"""Tests for §6 remediation: inter-subarray repairs and scrambling
boundaries are offlined, restoring containment."""

import pytest

from repro.attack.hammer import hammer_pattern_rows
from repro.core import SilozHypervisor
from repro.core.remediation import (
    apply_remediation,
    plan_remediation,
    remediation_ranges,
    scrambling_boundary_rows,
)
from repro.dram.geometry import DRAMGeometry
from repro.dram.transforms import RepairMap, TransformConfig
from repro.hv import Machine, VmSpec
from repro.mm.offline import OfflineReason
from repro.units import MiB


def repair_fixture(machine, defective=70, spare=130):
    """An inter-subarray repair on (socket 0, bank 0): row 70 (subarray
    1) repaired to a spare in subarray 2."""
    repair = RepairMap(machine.geom)
    repair.add(defective, spare)
    machine.dram.add_repair(0, 0, defective, spare)
    return {(0, 0): repair}


class TestScramblingBoundaryRows:
    def test_multiple_of_8_is_clean(self):
        geom = DRAMGeometry.small(rows_per_bank=512, rows_per_subarray=64)
        assert scrambling_boundary_rows(geom) == []

    def test_non_multiple_of_8_blocks(self):
        geom = DRAMGeometry.small(rows_per_bank=96, rows_per_subarray=12)
        rows = scrambling_boundary_rows(geom)
        assert rows
        # Each boundary (12, 24, ...) contributes its aligned 8-block.
        assert set(range(8, 16)) <= set(rows)  # boundary 12 -> block [8,16)
        assert all(0 <= r < 96 for r in rows)

    def test_fraction_matches_paper_formula(self):
        geom = DRAMGeometry.small(rows_per_bank=96, rows_per_subarray=12)
        rows = scrambling_boundary_rows(geom)
        # ~8 rows per subarray boundary; 7 interior boundaries in 96 rows.
        assert len(rows) == pytest.approx(7 * 8, abs=8)


class TestPlan:
    def test_repair_plan(self):
        machine = Machine.small(seed=95)
        repairs = repair_fixture(machine)
        plan = plan_remediation(machine.geom, repairs=repairs)
        assert [(i.socket, i.row) for i in plan] == [(0, 70)]
        assert plan[0].reason is OfflineReason.INTER_SUBARRAY_REPAIR

    def test_intra_subarray_repair_needs_nothing(self):
        machine = Machine.small(seed=95)
        repair = RepairMap(machine.geom)
        repair.add(70, 75)  # same subarray
        assert plan_remediation(machine.geom, repairs={(0, 0): repair}) == []

    def test_scrambling_plan_only_when_scrambling(self):
        geom = DRAMGeometry.small(rows_per_bank=96, rows_per_subarray=12)
        none = plan_remediation(geom, transforms=TransformConfig(scrambling=False))
        some = plan_remediation(geom, transforms=TransformConfig(scrambling=True))
        assert none == []
        assert some and all(
            i.reason is OfflineReason.SCRAMBLING_BOUNDARY for i in some
        )

    def test_ranges_are_row_groups(self):
        machine = Machine.small(seed=95)
        repairs = repair_fixture(machine)
        plan = plan_remediation(machine.geom, repairs=repairs)
        ranges = remediation_ranges(machine.mapping, plan)
        assert len(ranges) == 1
        (r, reason, socket) = ranges[0]
        assert r.size == machine.geom.row_group_bytes
        assert socket == 0


class TestBootIntegration:
    def test_repaired_row_group_offlined(self):
        machine = Machine.small(seed=96)
        repairs = repair_fixture(machine)
        hv = SilozHypervisor.boot(machine, repairs=repairs)
        assert (
            hv.offline.total_bytes(OfflineReason.INTER_SUBARRAY_REPAIR)
            == machine.geom.row_group_bytes
        )
        # No VM can ever be backed by the repaired row.
        (row_range, _, _) = remediation_ranges(
            machine.mapping, plan_remediation(machine.geom, repairs=repairs)
        )[0]
        for i in range(6):
            vm = hv.create_vm(VmSpec(name=f"vm{i}", memory_bytes=2 * MiB))
            for r in vm.backing:
                assert not r.overlaps(row_range)

    def test_containment_restored_with_remediation(self):
        """Without remediation an attacker owning the repaired row flips
        bits in another subarray (test_module shows this); with
        remediation, the row is unallocatable, so the whole campaign is
        contained again."""
        machine = Machine.small(seed=97)
        repairs = repair_fixture(machine)
        hv = SilozHypervisor.boot(machine, repairs=repairs)
        # Fill guest node holding subarray 1 (the repaired row's group).
        vm = hv.create_vm(VmSpec(name="a", memory_bytes=2 * MiB))
        from repro.attack import attack_from_vm

        outcome = attack_from_vm(hv, vm, seed=97, pattern_budget=30)
        assert outcome.report.flip_count > 0
        assert outcome.contained

    def test_unremediated_repair_breaks_containment(self):
        """Control: the same repair without remediation lets hammering
        the defective media row flip bits in the spare's subarray."""
        machine = Machine.small(seed=97)
        repair_fixture(machine)  # repair applied to DRAM, NOT to Siloz
        hv = SilozHypervisor.boot(machine)
        geom = machine.geom
        # Hammer the repaired media row (cells live in subarray 2).
        hammer_pattern_rows(machine.dram, 0, 0, [70], rounds=8000)
        flipped = {geom.subarray_of_row(f.row) for f in machine.dram.flips_log}
        assert 2 in flipped  # escaped into the spare's subarray

    def test_scrambling_boot_remediation(self):
        geom = DRAMGeometry.small(rows_per_bank=96, rows_per_subarray=12)
        from repro.dram.mapping import SkylakeMapping
        from repro.dram.module import SimulatedDram

        mapping = SkylakeMapping.for_small_geometry(geom)
        machine = Machine(
            geom=geom,
            mapping=mapping,
            dram=SimulatedDram(geom, mapping),
            cores_per_socket=2,
        )
        # 12-row subarrays cannot host a guard block; such a DIMM would
        # pair scrambling remediation with secure EPT.
        from repro.core import EptProtection, SilozConfig

        config = SilozConfig.scaled_for(
            geom, ept_protection=EptProtection.SECURE_EPT
        )
        hv = SilozHypervisor.boot(
            machine,
            config,
            dimm_transforms=TransformConfig(scrambling=True),
        )
        assert hv.offline.total_bytes(OfflineReason.SCRAMBLING_BOUNDARY) > 0
