"""Unit tests for the memory-controller timing model."""

import pytest

from repro.dram.geometry import DRAMGeometry
from repro.dram.mapping import SkylakeMapping
from repro.errors import MappingError, MemCtrlError
from repro.memctrl import (
    AccessKind,
    DDR4Timings,
    MemoryAccess,
    MemoryController,
    RestrictedInterleaveMapping,
    TraceResult,
)
from repro.memctrl.scheduler import BankState, ChannelState
from repro.units import CACHE_LINE

GEOM = DRAMGeometry.small(sockets=2)
MAPPING = SkylakeMapping.for_small_geometry(GEOM)
T = DDR4Timings.ddr4_2933()


def seq_trace(n, stride=CACHE_LINE, base=0, **kwargs):
    return [MemoryAccess(base + i * stride, **kwargs) for i in range(n)]


class TestTimings:
    def test_rc_is_ras_plus_rp(self):
        assert T.t_rc == pytest.approx(T.t_ras + T.t_rp)

    def test_miss_costs_more_than_hit(self):
        assert T.miss_latency > T.hit_latency

    def test_refresh_utilization_reasonable(self):
        assert 0.01 < T.refresh_utilization < 0.10

    def test_rejects_nonpositive(self):
        with pytest.raises(MemCtrlError):
            DDR4Timings(t_rcd=0)

    def test_slower_bin_is_slower(self):
        assert DDR4Timings.ddr4_2400().hit_latency > T.hit_latency


class TestBankState:
    def test_first_access_is_miss(self):
        bank = BankState()
        done, hit = bank.access(5, 0.0, T)
        assert not hit and bank.misses == 1

    def test_same_row_hits(self):
        bank = BankState()
        bank.access(5, 0.0, T)
        done, hit = bank.access(5, 100.0, T)
        assert hit and bank.hits == 1
        assert done == pytest.approx(100.0 + T.hit_latency)

    def test_conflict_pays_miss_latency(self):
        bank = BankState()
        bank.access(5, 0.0, T)
        done, hit = bank.access(9, 100.0, T)
        assert not hit
        assert done == pytest.approx(100.0 + T.miss_latency)

    def test_bank_serializes(self):
        bank = BankState()
        bank.access(5, 0.0, T)
        done, _ = bank.access(9, 0.0, T)  # issued while bank busy
        assert done > T.miss_latency  # waited for ready_at


class TestChannelState:
    def test_bus_serializes_bursts(self):
        chan = ChannelState(T)
        first = chan.claim_bus(0.0)
        second = chan.claim_bus(0.0)
        assert second == pytest.approx(first + T.t_burst)

    def test_refresh_blackout_grid(self):
        chan = ChannelState(T)
        # Window 0 blocks [0, tRFC): an access at t=0 waits out the
        # whole refresh; one just past the blackout is untouched.
        assert chan.refresh_adjust(0.0) == T.t_rfc
        assert chan.refresh_adjust(T.t_rfc + 1.0) == T.t_rfc + 1.0
        # Window 1 starts at tREFI and delays to its end.
        assert chan.refresh_adjust(T.t_refi + 1.0) == T.t_refi + T.t_rfc
        assert chan.refreshes == 2

    def test_refresh_window_counted_once(self):
        chan = ChannelState(T)
        chan.refresh_adjust(0.0)
        chan.refresh_adjust(1.0)
        chan.refresh_adjust(T.t_rfc / 2)
        assert chan.refreshes == 1


class TestController:
    def test_empty_trace_rejected(self):
        with pytest.raises(MemCtrlError):
            MemoryController(MAPPING).run_trace([])

    def test_rejects_bad_outstanding(self):
        with pytest.raises(MemCtrlError):
            MemoryController(MAPPING, max_outstanding=0)

    def test_counts(self):
        result = MemoryController(MAPPING).run_trace(
            seq_trace(10) + [MemoryAccess(0, kind=AccessKind.WRITE)]
        )
        assert result.accesses == 11
        assert result.reads == 10 and result.writes == 1
        assert result.bytes_transferred == 11 * 64

    def test_sequential_trace_uses_all_banks(self):
        result = MemoryController(MAPPING).run_trace(seq_trace(256))
        assert result.banks_touched == GEOM.banks_per_socket

    def test_deterministic(self):
        mc = MemoryController(MAPPING)
        a = mc.run_trace(seq_trace(500))
        b = mc.run_trace(seq_trace(500))
        assert a.total_time_ns == b.total_time_ns

    def test_execution_time_monotonic_in_length(self):
        mc = MemoryController(MAPPING)
        short = mc.run_trace(seq_trace(100))
        long = mc.run_trace(seq_trace(1000))
        assert long.total_time_ns > short.total_time_ns

    def test_cpu_gap_extends_time(self):
        mc = MemoryController(MAPPING)
        tight = mc.run_trace(seq_trace(100))
        slack = mc.run_trace(seq_trace(100, cpu_gap_ns=100.0))
        assert slack.total_time_ns > tight.total_time_ns

    def test_remote_socket_penalty(self):
        mc = MemoryController(MAPPING)
        local = mc.run_trace(seq_trace(200, home_socket=0))
        remote = mc.run_trace(seq_trace(200, home_socket=1))
        assert remote.avg_latency_ns > local.avg_latency_ns
        assert remote.remote_accesses == 200
        assert local.remote_accesses == 0

    def test_row_locality_pays_off(self):
        """Same-row streaming beats row-conflict ping-pong."""
        mc = MemoryController(MAPPING)
        # All accesses to one bank: alternate rows vs same row.
        line0 = 0  # bank 0 row 0
        same_row = [MemoryAccess(line0) for _ in range(200)]
        row_stride = GEOM.row_group_bytes  # next row group, same bank
        conflict = [
            MemoryAccess(line0 + (i % 2) * row_stride) for i in range(200)
        ]
        hits = mc.run_trace(same_row)
        misses = mc.run_trace(conflict)
        assert hits.hit_rate > 0.95
        assert misses.hit_rate == 0.0
        assert misses.total_time_ns > hits.total_time_ns

    def test_bandwidth_positive(self):
        result = MemoryController(MAPPING).run_trace(seq_trace(1000))
        assert result.bandwidth_gib_s > 0

    def test_empty_result_properties(self):
        r = TraceResult()
        assert r.hit_rate == 0.0 and r.avg_latency_ns == 0.0
        assert r.bandwidth_gib_s == 0.0


class TestBankParallelismAblation:
    """§4.1: restricting a workload to few banks costs real time."""

    def test_restricted_mapping_decode(self):
        restricted = RestrictedInterleaveMapping.first_n_banks(GEOM, 2)
        banks = {restricted.decode(i * 64).socket_bank_index(GEOM) for i in range(8)}
        assert banks == {0, 1}

    def test_restricted_mapping_bounds(self):
        restricted = RestrictedInterleaveMapping.first_n_banks(GEOM, 1)
        with pytest.raises(MappingError):
            restricted.decode(restricted.capacity)

    def test_restricted_rejects_bad_banks(self):
        with pytest.raises(MappingError):
            RestrictedInterleaveMapping(GEOM, ())
        with pytest.raises(MappingError):
            RestrictedInterleaveMapping(GEOM, (0, 0))
        with pytest.raises(MappingError):
            RestrictedInterleaveMapping(GEOM, (GEOM.banks_per_socket,))

    def test_fewer_banks_is_slower(self):
        """The quantitative heart of §4.1: the same random-ish trace is
        substantially slower on 1 bank than on all banks."""
        full = MemoryController(MAPPING)
        one = MemoryController(RestrictedInterleaveMapping.first_n_banks(GEOM, 1))
        # Random-stride reads within a small footprint.
        import random

        rng = random.Random(0)
        addrs = [rng.randrange(0, 2**16) * 64 % (GEOM.bank_bytes // 2) for _ in range(2000)]
        trace = [MemoryAccess(a) for a in addrs]
        t_full = full.run_trace(trace).total_time_ns
        t_one = one.run_trace(trace).total_time_ns
        assert t_one > 1.18 * t_full  # >= 18 % worse (paper cites [143])

    def test_subarray_row_position_does_not_matter(self):
        """§7.4: timing is independent of which subarray rows live in."""
        mc = MemoryController(MAPPING)
        low = mc.run_trace(seq_trace(512, base=0))
        # Same pattern, different subarray group (different rows).
        high = mc.run_trace(
            seq_trace(512, base=GEOM.subarray_group_bytes)
        )
        assert low.total_time_ns == pytest.approx(high.total_time_ns)
