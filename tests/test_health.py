"""Tests for the runtime health monitor: leaky-bucket escalation from
correctable-error storms to soak and live offlining."""

import pytest

from repro.core import SilozHypervisor
from repro.dram.ecc import EccEvent, EccOutcome
from repro.errors import UncorrectableError
from repro.hv import Machine, VmSpec
from repro.hv.health import HealthError, HealthMonitor, HealthPolicy, HealthState
from repro.hv.mce import MceHandler
from repro.units import MiB


def make_hv(seed=51):
    return SilozHypervisor.boot(Machine.small(seed=seed))


def ce(socket, row, when, bank=0, word=0):
    return EccEvent(socket=socket, bank=bank, row=row, word=word,
                    outcome=EccOutcome.CORRECTED, flipped_bits=1, when=when)


def ue(socket, row, when):
    return EccEvent(socket=socket, bank=0, row=row, word=0,
                    outcome=EccOutcome.UNCORRECTABLE, flipped_bits=2, when=when)


class TestPolicy:
    def test_threshold_ordering_enforced(self):
        with pytest.raises(HealthError):
            HealthPolicy(watch_threshold=6.0, soak_threshold=3.0)

    def test_negative_leak_rejected(self):
        with pytest.raises(HealthError):
            HealthPolicy(leak_per_second=-1.0)


class TestBucket:
    def setup_method(self):
        self.hv = make_hv()
        self.monitor = HealthMonitor(self.hv, auto_remediate=False).attach()

    def test_unknown_row_group_is_ok(self):
        assert self.monitor.state_of(0, 5) is HealthState.OK
        assert self.monitor.level_of(0, 5) == 0.0

    def test_ces_accumulate(self):
        for i in range(2):
            self.monitor.on_ecc_event(ce(0, 5, when=float(i)))
        assert self.monitor.state_of(0, 5) is HealthState.OK
        # Two events one second apart with leak 1.0/s: 1 + (1 - 1) = 1.
        assert self.monitor.level_of(0, 5) == pytest.approx(1.0)

    def test_leak_drains_with_time(self):
        self.monitor.on_ecc_event(ce(0, 5, when=0.0))
        self.hv.machine.dram.advance_time(10.0)
        assert self.monitor.level_of(0, 5) == 0.0

    def test_watch_threshold(self):
        # Four events: the leak drains a hair between them, so three
        # would land just under the 3.0 threshold.
        for i in range(4):
            self.monitor.on_ecc_event(ce(0, 5, when=i * 0.001))
        assert self.monitor.state_of(0, 5) is HealthState.WATCH
        assert any("watch" in line for line in self.monitor.timeline)

    def test_ue_weight_jumps_straight_to_soak(self):
        self.monitor.on_ecc_event(ue(0, 5, when=0.0))
        # One UE is worth 8.0: past watch (3) and soak (6) in one event.
        assert self.monitor.state_of(0, 5) is HealthState.SOAK

    def test_recovery_via_poll(self):
        for i in range(4):
            self.monitor.on_ecc_event(ce(0, 5, when=i * 0.001))
        assert self.monitor.state_of(0, 5) is HealthState.WATCH
        self.hv.machine.dram.advance_time(60.0)
        self.monitor.poll()
        assert self.monitor.state_of(0, 5) is HealthState.OK
        assert any("recovered" in line for line in self.monitor.timeline)

    def test_silent_errors_invisible(self):
        event = EccEvent(socket=0, bank=0, row=5, word=0,
                         outcome=EccOutcome.SILENT, flipped_bits=3, when=0.0)
        self.monitor.on_ecc_event(event)
        assert self.monitor.level_of(0, 5) == 0.0

    def test_offline_threshold_respects_auto_remediate_off(self):
        for i in range(15):
            self.monitor.on_ecc_event(ce(0, 5, when=i * 0.001))
        assert self.monitor.state_of(0, 5) is HealthState.SOAK
        assert any("auto-remediation disabled" in line for line in self.monitor.timeline)


class TestSoak:
    def test_soak_quarantines_free_row_group(self):
        hv = make_hv()
        monitor = HealthMonitor(hv, auto_remediate=False).attach()
        # Pick a row group inside a free guest-reserved node.
        from repro.mm.numa import NodeKind

        node = hv.topology.nodes_of_kind(NodeKind.GUEST_RESERVED)[0]
        target = None
        for row in range(hv.machine.geom.rows_per_bank):
            rg = hv.machine.mapping.row_group_ranges(0, row)[0]
            if any(rg.start >= r.start and rg.end <= r.end for r in node.ranges):
                target = row
                break
        assert target is not None
        before = node.free_bytes
        for i in range(7):
            monitor.on_ecc_event(ce(0, target, when=i * 0.001))
        assert monitor.state_of(0, target) is HealthState.SOAK
        assert node.free_bytes == before - hv.machine.geom.row_group_bytes
        assert node.allocator.quarantined_bytes == hv.machine.geom.row_group_bytes
        # Recovery releases the quarantine.
        hv.machine.dram.advance_time(60.0)
        monitor.poll()
        assert monitor.state_of(0, target) is HealthState.OK
        assert node.free_bytes == before


class TestEscalationToOffline:
    def test_storm_reaches_offlined(self):
        hv = make_hv()
        vm = hv.create_vm(VmSpec(name="tenant", memory_bytes=2 * MiB))
        monitor = hv.enable_health_monitoring()
        hpa = vm.backing[0].start
        media = hv.machine.mapping.decode(hpa)
        for i in range(15):
            monitor.on_ecc_event(ce(media.socket, media.row, when=i * 0.001))
        assert monitor.state_of(media.socket, media.row) is HealthState.OFFLINED
        assert monitor.reports and monitor.reports[0].complete
        rg = hv.machine.mapping.row_group_ranges(media.socket, media.row)[0]
        assert hv.offline.is_offline(rg.start)

    def test_enable_is_idempotent(self):
        hv = make_hv()
        first = hv.enable_health_monitoring()
        assert hv.enable_health_monitoring() is first


class TestMceFeed:
    def test_handler_feeds_health_ledger(self):
        hv = make_hv()
        vm = hv.create_vm(VmSpec(name="tenant", memory_bytes=2 * MiB))
        monitor = hv.enable_health_monitoring(
            HealthPolicy(ue_weight=4.0), auto_remediate=False
        )
        hpa = vm.translate(0x5000)
        media = hv.machine.mapping.decode(hpa)
        bank = media.socket_bank_index(hv.machine.geom)
        for bit in (0, 1):
            hv.machine.dram._toggle_bit(media.socket, bank, media.row,
                                        media.col * 8 + bit)
        MceHandler(hv).handle(UncorrectableError("uc", address=hpa))
        assert monitor.level_of(media.socket, media.row) == pytest.approx(4.0)
        assert monitor.state_of(media.socket, media.row) is HealthState.WATCH
