"""Unit tests for the attack package (patterns, fuzzer, runner)."""

import random

import pytest

from repro.attack import (
    BlacksmithFuzzer,
    HammerPattern,
    attack_from_vm,
    hammer_double_sided,
    hammer_pattern_rows,
    run_pattern,
)
from repro.attack.runner import _runs, rows_owned_by_vm
from repro.dram.disturbance import DisturbanceProfile
from repro.dram.geometry import DRAMGeometry
from repro.dram.module import SimulatedDram
from repro.dram.trr import TrrConfig
from repro.errors import AttackError
from repro.hv import BaselineHypervisor, Machine, VmSpec
from repro.core import SilozHypervisor
from repro.units import KiB, MiB

GEOM = DRAMGeometry.small()  # 64 rows, 8-row subarrays


def make_dram(threshold=48.0, trr=None, seed=0):
    return SimulatedDram(
        GEOM,
        profile=DisturbanceProfile.test_scale(threshold_mean=threshold),
        trr_config=trr,
        seed=seed,
    )


class TestPatterns:
    def test_double_sided_shape(self):
        p = HammerPattern.double_sided()
        assert p.aggressors == (-1, 1)
        assert p.n_sided == 2

    def test_many_sided(self):
        p = HammerPattern.many_sided(4)
        assert p.aggressors == (0, 2, 4, 6)

    def test_with_decoys_disjoint(self):
        p = HammerPattern.with_decoys(3, 2)
        assert not set(p.aggressors) & set(p.decoys)
        # Decoys come first in the default order (sampler slots).
        assert p.order[: len(p.decoys)] == p.decoys

    def test_rejects_empty(self):
        with pytest.raises(AttackError):
            HammerPattern(aggressors=())

    def test_rejects_overlapping_decoys(self):
        with pytest.raises(AttackError):
            HammerPattern(aggressors=(1,), decoys=(1,))

    def test_rejects_unknown_order(self):
        with pytest.raises(AttackError):
            HammerPattern(aggressors=(1,), order=(1, 99))

    def test_rejects_bad_rounds(self):
        with pytest.raises(AttackError):
            HammerPattern(aggressors=(1,), rounds=0)

    def test_random_patterns_valid(self):
        rng = random.Random(0)
        for _ in range(50):
            p = HammerPattern.random(rng)
            assert p.aggressors
            assert p.total_activations() > 0

    def test_shifted(self):
        p = HammerPattern.double_sided().shifted(10)
        assert p.aggressors == (9, 11)

    def test_describe(self):
        assert "2-sided" in HammerPattern.double_sided().describe()


class TestHammerPrimitives:
    def test_double_sided_flips_victim(self):
        dram = make_dram()
        flips = hammer_double_sided(dram, 0, 0, victim_row=4, activations=6000)
        assert flips
        assert any(f.row == 4 for f in flips)

    def test_pattern_rows_validated(self):
        dram = make_dram()
        with pytest.raises(Exception):
            hammer_pattern_rows(dram, 0, 0, [9999], rounds=1)
        with pytest.raises(AttackError):
            hammer_pattern_rows(dram, 0, 0, [], rounds=1)

    def test_run_pattern_clamps_to_bank(self):
        dram = make_dram()
        pattern = HammerPattern.double_sided()  # offsets -1, +1
        flips = run_pattern(dram, 0, 0, 0, pattern)  # -1 clamped away
        assert all(0 <= f.row < GEOM.rows_per_bank for f in flips)

    def test_run_pattern_rejects_fully_out_of_bank(self):
        dram = make_dram()
        pattern = HammerPattern(aggressors=(500,), rounds=1)
        with pytest.raises(AttackError):
            run_pattern(dram, 0, 0, 0, pattern)

    def test_flips_confined_to_subarray(self):
        dram = make_dram()
        pattern = HammerPattern.many_sided(3, rounds=3000)
        flips = run_pattern(dram, 0, 0, 2, pattern)  # aggressors 2,4,6
        assert flips
        assert all(f.row < 8 for f in flips)


class TestBlacksmithFuzzer:
    def test_finds_flips_without_trr(self):
        dram = make_dram()
        fuzzer = BlacksmithFuzzer(dram, [(0, 0, range(0, 32))], seed=1)
        report = fuzzer.run(pattern_budget=20)
        assert report.flip_count > 0
        assert report.effective_patterns

    def test_beats_trr(self):
        """The §7.1 premise: Blacksmith flips bits despite TRR."""
        dram = make_dram(trr=TrrConfig(), seed=2)
        fuzzer = BlacksmithFuzzer(dram, [(0, 0, range(0, 32))], seed=2)
        report = fuzzer.run_until_flips(min_flips=1, max_patterns=120)
        assert report.flip_count > 0

    def test_flips_stay_in_target_subarrays(self):
        dram = make_dram()
        fuzzer = BlacksmithFuzzer(dram, [(0, 0, range(8, 16))], seed=3)
        report = fuzzer.run(pattern_budget=30)
        if report.flips:  # row range = subarray 1 exactly
            assert all(8 <= f.row < 16 for f in report.flips)

    def test_requires_targets(self):
        with pytest.raises(AttackError):
            BlacksmithFuzzer(make_dram(), [])

    def test_report_accounting(self):
        dram = make_dram()
        fuzzer = BlacksmithFuzzer(dram, [(0, 0, range(0, 32))], seed=4)
        report = fuzzer.run(pattern_budget=5)
        assert report.patterns_tried == 5
        assert report.activations > 0
        by_sub = report.flips_by_subarray(GEOM)
        assert sum(by_sub.values()) == report.flip_count

    def test_small_target_ranges_skipped(self):
        dram = make_dram()
        fuzzer = BlacksmithFuzzer(dram, [(0, 0, range(0, 2))], seed=5)
        report = fuzzer.run(pattern_budget=5)  # most patterns won't fit
        assert report.patterns_tried == 5


class TestRunnerHelpers:
    def test_runs_splits_gaps(self):
        assert _runs([1, 2, 3, 7, 8]) == [range(1, 4), range(7, 9)]
        assert _runs([]) == []
        assert _runs([5]) == [range(5, 6)]

    def test_rows_owned_by_vm(self):
        hv = SilozHypervisor.boot(Machine.small())
        vm = hv.create_vm(VmSpec(name="a", memory_bytes=2 * MiB))
        owned = rows_owned_by_vm(hv, vm)
        geom = hv.machine.geom
        groups = {
            geom.subarray_of_row(r) for r in owned[0]
        }
        assert groups <= {g for _, g in vm.reserved_groups}


class TestAttackFromVm:
    def test_siloz_attack_contained(self):
        hv = SilozHypervisor.boot(Machine.small(seed=7))
        attacker = hv.create_vm(VmSpec(name="attacker", memory_bytes=2 * MiB))
        hv.create_vm(VmSpec(name="victim", memory_bytes=2 * MiB))
        outcome = attack_from_vm(hv, attacker, seed=7, pattern_budget=25)
        assert outcome.report.flip_count > 0  # the attack works...
        assert outcome.contained  # ...but never escapes (Table 3)
        assert outcome.victim_flips == {}

    def test_baseline_attack_corrupts_victim(self):
        """Flips always stay in the attacker's *physical* subarray — but
        the baseline shares subarrays between VMs, so the victim's data
        is corrupted anyway.  Siloz's fix is making the groups private,
        not changing the physics."""
        hv = BaselineHypervisor(Machine.small(seed=8), backing_page_bytes=64 * KiB)
        attacker = hv.create_vm(VmSpec(name="attacker", memory_bytes=2 * MiB))
        hv.create_vm(VmSpec(name="victim", memory_bytes=2 * MiB))
        outcome = attack_from_vm(hv, attacker, seed=8, pattern_budget=80)
        assert outcome.report.flip_count > 0
        assert outcome.victim_flips  # inter-VM corruption happened

    def test_summary_format(self):
        hv = SilozHypervisor.boot(Machine.small(seed=9))
        attacker = hv.create_vm(VmSpec(name="a", memory_bytes=2 * MiB))
        outcome = attack_from_vm(hv, attacker, seed=9, pattern_budget=5)
        assert "attacker=a" in outcome.summary()
