"""Unit tests for the Skylake-like physical-to-media mapping (§4.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.geometry import DRAMGeometry
from repro.dram.mapping import AddressRange, SkylakeMapping, merge_ranges
from repro.errors import MappingError
from repro.units import CACHE_LINE, GiB, KiB, MiB, PAGE_2M, PAGE_4K

SMALL = DRAMGeometry.small(sockets=2)
SMALL_MAP = SkylakeMapping.for_small_geometry(SMALL)


class TestAddressRange:
    def test_size_and_contains(self):
        r = AddressRange(0x1000, 0x2000)
        assert r.size == 0x1000
        assert 0x1000 in r and 0x1fff in r and 0x2000 not in r

    def test_rejects_inverted(self):
        with pytest.raises(MappingError):
            AddressRange(10, 5)

    def test_overlaps(self):
        assert AddressRange(0, 10).overlaps(AddressRange(9, 20))
        assert not AddressRange(0, 10).overlaps(AddressRange(10, 20))

    def test_merge_coalesces_adjacent(self):
        merged = merge_ranges(
            [AddressRange(10, 20), AddressRange(0, 10), AddressRange(30, 40)]
        )
        assert merged == [AddressRange(0, 20), AddressRange(30, 40)]


class TestShape:
    def test_paper_chunk_is_24_mib(self):
        mapping = SkylakeMapping(DRAMGeometry.paper_default())
        assert mapping.chunk_bytes == 24 * MiB

    def test_paper_region_is_768_mib(self):
        mapping = SkylakeMapping(DRAMGeometry.paper_default())
        assert mapping.region_bytes == 768 * MiB

    def test_small_shape_divides(self):
        assert SMALL.rows_per_bank % SMALL_MAP.region_row_groups == 0

    def test_rejects_non_dividing_region(self):
        geom = DRAMGeometry.small(rows_per_bank=48, rows_per_subarray=8)
        with pytest.raises(MappingError):
            SkylakeMapping(geom, chunk_row_groups=5, chunks_per_range=2)


class TestRoundTrip:
    def test_exhaustive_small_geometry(self):
        SMALL_MAP.verify_invertible(stride=CACHE_LINE)

    @given(st.integers(min_value=0, max_value=SMALL.total_bytes - 1))
    @settings(max_examples=200)
    def test_byte_roundtrip(self, hpa):
        assert SMALL_MAP.encode(SMALL_MAP.decode(hpa)) == hpa

    def test_paper_scale_sampled_roundtrip(self):
        geom = DRAMGeometry.paper_default()
        mapping = SkylakeMapping(geom)
        for hpa in range(0, geom.total_bytes, 977 * MiB + 4096 + 64):
            assert mapping.encode(mapping.decode(hpa)) == hpa

    def test_decode_rejects_out_of_range(self):
        with pytest.raises(MappingError):
            SMALL_MAP.decode(SMALL.total_bytes)
        with pytest.raises(MappingError):
            SMALL_MAP.decode(-1)


class TestInterleaving:
    """§2.4: sequential cache lines spread across banks."""

    def test_consecutive_lines_hit_distinct_banks(self):
        banks = [
            SMALL_MAP.decode(i * CACHE_LINE).socket_bank_index(SMALL)
            for i in range(SMALL.banks_per_socket)
        ]
        assert sorted(banks) == list(range(SMALL.banks_per_socket))

    def test_4k_page_touches_many_banks(self):
        banks = {
            SMALL_MAP.decode(i * CACHE_LINE).socket_bank_index(SMALL)
            for i in range(PAGE_4K // CACHE_LINE)
        }
        assert len(banks) == min(SMALL.banks_per_socket, PAGE_4K // CACHE_LINE)

    def test_paper_4k_page_touches_64_banks(self):
        mapping = SkylakeMapping(DRAMGeometry.paper_default())
        banks = {
            mapping.decode(i * CACHE_LINE).socket_bank_index(mapping.geom)
            for i in range(PAGE_4K // CACHE_LINE)
        }
        assert len(banks) == 64  # 64 lines in a 4 KiB page

    def test_socket_split(self):
        assert SMALL_MAP.decode(0).socket == 0
        assert SMALL_MAP.decode(SMALL.socket_bytes).socket == 1


class TestChunkAlternation:
    """§4.2's A/B population pattern."""

    def test_row_groups_do_not_ascend_monotonically(self):
        rows = [
            SMALL_MAP.decode(SMALL.row_group_bytes * i).row
            for i in range(SMALL_MAP.region_row_groups)
        ]
        assert rows != sorted(rows)
        assert sorted(rows) == list(range(SMALL_MAP.region_row_groups))

    def test_first_chunk_of_region_is_range_a(self):
        # Physical chunk 0 (range A's first chunk) fills row groups [0, n).
        for rg in range(SMALL_MAP.chunk_row_groups):
            hpa = rg * SMALL.row_group_bytes
            assert SMALL_MAP.decode(hpa).row == rg

    def test_range_b_first_chunk_fills_second_rg_chunk(self):
        # Physical chunk cpr (range B's first chunk) fills row groups [n, 2n).
        base = SMALL_MAP.chunks_per_range * SMALL_MAP.chunk_bytes
        assert SMALL_MAP.decode(base).row == SMALL_MAP.chunk_row_groups

    def test_chunk_permutation_is_bijective(self):
        total = 2 * SMALL_MAP.chunks_per_range
        image = {SMALL_MAP._phys_chunk_to_rg_chunk(c) for c in range(total)}
        assert image == set(range(total))
        for c in range(total):
            assert SMALL_MAP._rg_chunk_to_phys_chunk(
                SMALL_MAP._phys_chunk_to_rg_chunk(c)
            ) == c


class TestSubarrayGroupQueries:
    def test_group_of_hpa_matches_row(self):
        for hpa in range(0, SMALL.total_bytes, 3 * 8 * KiB):
            socket, group = SMALL_MAP.subarray_group_of_hpa(hpa)
            media = SMALL_MAP.decode(hpa)
            assert socket == media.socket
            assert group == media.row // SMALL.rows_per_subarray

    def test_group_ranges_cover_group_exactly(self):
        for socket in range(SMALL.sockets):
            for group in range(SMALL.groups_per_socket):
                ranges = SMALL_MAP.subarray_group_ranges(socket, group)
                total = sum(r.size for r in ranges)
                assert total == SMALL.subarray_group_bytes
                for r in ranges:
                    for hpa in range(r.start, r.end, SMALL.row_group_bytes):
                        assert SMALL_MAP.subarray_group_of_hpa(hpa) == (socket, group)

    def test_group_ranges_contiguous_when_group_spans_whole_regions(self):
        # 8-row subarrays = 8 row groups = exactly one mapping region here,
        # so each group is one contiguous range (mirrors the paper where
        # 1024-row groups span exactly two 768 MiB regions).
        for group in range(SMALL.groups_per_socket):
            assert len(SMALL_MAP.subarray_group_ranges(0, group)) == 1

    def test_groups_partition_the_socket(self):
        seen = []
        for group in range(SMALL.groups_per_socket):
            seen.extend(SMALL_MAP.subarray_group_ranges(0, group))
        merged = merge_ranges(seen)
        assert merged == [AddressRange(0, SMALL.socket_bytes)]

    def test_row_group_range_is_single_and_sized(self):
        (r,) = SMALL_MAP.row_group_ranges(0, 5)
        assert r.size == SMALL.row_group_bytes

    def test_rejects_bad_group(self):
        with pytest.raises(MappingError):
            SMALL_MAP.subarray_group_ranges(0, SMALL.groups_per_socket)


class TestPageIsolation:
    """§4.2: 4 KiB and 2 MiB pages always isolate; huge ranges may not."""

    def test_all_4k_pages_isolated(self):
        assert SMALL_MAP.fraction_of_pages_isolated(PAGE_4K) == 1.0

    def test_all_rowgroup_sized_pages_isolated(self):
        assert SMALL_MAP.fraction_of_pages_isolated(SMALL.row_group_bytes) == 1.0

    def test_chunk_sized_pages_isolated(self):
        # Chunks are the 24 MiB analogue: always single-group.
        assert SMALL_MAP.fraction_of_pages_isolated(SMALL_MAP.chunk_bytes) == 1.0

    def test_group_sized_pages_isolated_here(self):
        # Group == mapping region on this geometry, so aligned group-size
        # pages isolate.
        frac = SMALL_MAP.fraction_of_pages_isolated(SMALL.subarray_group_bytes)
        assert frac == 1.0

    def test_oversized_pages_not_isolated(self):
        # Pages spanning two subarray groups cannot isolate.
        frac = SMALL_MAP.fraction_of_pages_isolated(2 * SMALL.subarray_group_bytes)
        assert frac == 0.0

    def test_groups_touched_by_range(self):
        groups = SMALL_MAP.groups_touched_by_range(0, 2 * SMALL.subarray_group_bytes)
        assert groups == {(0, 0), (0, 1)}

    def test_groups_touched_rejects_empty(self):
        with pytest.raises(MappingError):
            SMALL_MAP.groups_touched_by_range(0, 0)

    def test_page_is_isolated_predicate(self):
        assert SMALL_MAP.page_is_isolated(0, PAGE_4K)
        assert not SMALL_MAP.page_is_isolated(
            SMALL.subarray_group_bytes - PAGE_4K, 2 * PAGE_4K
        )


@pytest.mark.slow
class TestPaperScaleIsolation:
    """Spot-check the paper's 2 MiB / 1 GiB page claims on real geometry."""

    def setup_method(self):
        self.geom = DRAMGeometry.paper_default()
        self.mapping = SkylakeMapping(self.geom)

    def test_2mib_pages_single_group_sampled(self):
        # Sample across chunk and region boundaries.
        for start in range(0, 4 * self.mapping.region_bytes, 37 * PAGE_2M):
            assert self.mapping.page_is_isolated(start, PAGE_2M)

    def test_1gib_pages_straddle_group_boundaries(self):
        # 1.5 GiB groups mean the 1 GiB page at offset 1 GiB spans the
        # group 0 / group 1 boundary — 1 GiB pages do not inherently map
        # to a single group (§4.2)...
        assert not self.mapping.page_is_isolated(GiB, GiB)
        # ...but it stays within the 3 GiB set formed by consecutive
        # groups (0, 1), so set-level isolation works.
        groups = self.mapping.groups_touched_by_range(GiB, GiB)
        assert {g for _, g in groups} == {0, 1}

    def test_one_third_of_1gib_ranges_fit_3gib_sets(self):
        # §4.2: at least 1/3 of aligned 1 GiB ranges sit inside a single
        # 3 GiB set of two consecutive 1.5 GiB groups.
        fitting = 0
        total = 12
        for i in range(total):
            groups = self.mapping.groups_touched_by_range(i * GiB, GiB)
            sets = {g // 2 for _, g in groups}
            if len(sets) == 1:
                fitting += 1
        assert fitting >= total // 3
