"""Differential harness: the fast engines vs the scalar golden reference.

The ``SimBackend.BATCHED`` and ``SimBackend.VECTORIZED`` fast paths
(:mod:`repro.engine`) are only admissible because they are
*observationally identical* to the scalar path: same flip sets, same TRR decisions, same ECC events, same
health-monitor escalations, same clocks and counters.  These tests
enforce that contract on three levels:

1. seeded mixed programs (hammer shapes + fault plans + scrubs + guest
   I/O) through :func:`conftest.replay_program`, compared pairwise
   across all three backends — a handful of seeds in tier1, ~50 seeds
   in the tier2 fuzz job (every failure names the seed to replay);
2. the end-to-end CE-storm scenario, whose transcript/replay key must
   be backend-independent;
3. the attack stack (fuzzer campaigns) and the memory controllers,
   whose flat-decode fast path must match the MediaAddress reference.
"""

from __future__ import annotations

import pytest

from conftest import diff_transcripts, replay_program

from repro.units import MiB


BACKENDS = ("scalar", "batched", "vectorized")


def _assert_equivalent(seed: int) -> None:
    transcripts = {backend: replay_program(backend, seed) for backend in BACKENDS}
    problems = []
    for i, a in enumerate(BACKENDS):
        for b in BACKENDS[i + 1 :]:
            problems += diff_transcripts(
                seed, transcripts[a], transcripts[b], labels=(a, b)
            )
    assert not problems, (
        f"backends diverged; replay with replay_program(<backend>, {seed}):\n"
        + "\n".join(problems)
    )


class TestMixedPrograms:
    @pytest.mark.parametrize("seed", range(8))
    def test_equivalent_small_seeds(self, seed):
        _assert_equivalent(seed)

    def test_flips_actually_happen(self):
        # Guard against vacuous equivalence: at least one of the tier1
        # seeds must produce disturbance flips on both backends.
        assert any(
            replay_program("scalar", seed)["flips"] for seed in range(8)
        ), "differential seeds never flip a bit; raise pressure"


@pytest.mark.tier2
class TestDifferentialFuzz:
    """Satellite: ~50-seed fuzz sweep (separate CI job)."""

    @pytest.mark.parametrize("seed", range(100, 150))
    def test_equivalent_fuzz_seed(self, seed):
        _assert_equivalent(seed)


class TestScenarioTranscripts:
    @pytest.mark.parametrize("seed", (0, 3))
    def test_ce_storm_replay_key_backend_independent(self, seed):
        from repro.faults.scenario import run_ce_storm_scenario

        runs = {b: run_ce_storm_scenario(seed=seed, backend=b) for b in BACKENDS}
        scalar = runs["scalar"]
        for backend in BACKENDS[1:]:
            other = runs[backend]
            assert scalar.transcript == other.transcript, f"seed={seed} {backend}"
            assert scalar.replay_key() == other.replay_key(), backend
        assert all(r.success for r in runs.values())


class TestAttackStack:
    def test_fuzzer_campaign_identical(self):
        from repro.attack import attack_from_vm
        from repro.core import SilozHypervisor
        from repro.hv import Machine, VmSpec

        outcomes = {}
        logs = {}
        for backend in BACKENDS:
            hv = SilozHypervisor.boot(Machine.small(seed=7, backend=backend))
            attacker = hv.create_vm(VmSpec(name="attacker", memory_bytes=2 * MiB))
            hv.create_vm(VmSpec(name="victim", memory_bytes=2 * MiB))
            outcomes[backend] = attack_from_vm(
                hv, attacker, seed=7, pattern_budget=12
            )
            logs[backend] = hv.machine.dram.flips_log
        for backend in BACKENDS[1:]:
            assert logs["scalar"] == logs[backend], backend
            assert outcomes["scalar"].summary() == outcomes[backend].summary()
            assert (
                outcomes["scalar"].report.activations
                == outcomes[backend].report.activations
            )

    def test_blast_radius_identical(self):
        from repro.attack.blaster import measure_blast_radius
        from repro.dram.disturbance import DisturbanceProfile
        from repro.dram.geometry import DRAMGeometry
        from repro.dram.module import SimulatedDram

        geom = DRAMGeometry.small(rows_per_bank=128, rows_per_subarray=16)
        profiles = {}
        for backend in BACKENDS:
            dram = SimulatedDram(
                geom,
                profile=DisturbanceProfile.test_scale(threshold_mean=80.0),
                trr_config=None,
                seed=9,
                backend=backend,
            )
            profiles[backend] = measure_blast_radius(
                dram, activations=4000
            ).flips_by_distance
        for backend in BACKENDS[1:]:
            assert profiles["scalar"] == profiles[backend], backend
        assert profiles["scalar"], "blast measurement produced no flips"


class TestMitigationDifferential:
    """Every registered mitigation must keep the bit-identity contract:
    one micro fleet campaign per mitigation, same merged
    :class:`BakeoffReport` digest on all three backends."""

    def _micro(self, mitigation: str, backend: str, seed: int = 0):
        from repro.mitigations.bakeoff import BakeoffConfig, run_bakeoff

        return run_bakeoff(
            BakeoffConfig(
                mitigations=(mitigation,),
                hosts=2,
                vms=4,
                seed=seed,
                budget=2,
                backend=backend,
            )
        )

    @pytest.mark.parametrize("mitigation", (
        "none", "siloz", "para", "catt", "domain-buddy", "guard-rows",
    ))
    def test_bakeoff_digest_backend_independent(self, mitigation):
        reports = {b: self._micro(mitigation, b) for b in BACKENDS}
        for backend in BACKENDS[1:]:
            assert (
                reports["scalar"].mitigation_digest(mitigation)
                == reports[backend].mitigation_digest(mitigation)
            ), f"{mitigation} diverged on {backend}"
            assert reports["scalar"].digest() == reports[backend].digest()


@pytest.mark.tier2
class TestMitigationDifferentialFuzz:
    """Satellite: seed-swept mitigation bit-identity (separate CI job).

    Each seed exercises one mitigation (round-robin) on scalar vs
    vectorized — the pair that actually shares no hot-path code."""

    @pytest.mark.parametrize("seed", range(200, 250))
    def test_bakeoff_digest_fuzz_seed(self, seed):
        from repro.mitigations import mitigation_names
        from repro.mitigations.bakeoff import BakeoffConfig, run_bakeoff

        names = mitigation_names()
        mitigation = names[seed % len(names)]
        digests = {}
        for backend in ("scalar", "vectorized"):
            report = run_bakeoff(
                BakeoffConfig(
                    mitigations=(mitigation,),
                    hosts=2,
                    vms=4,
                    seed=seed,
                    budget=3,
                    backend=backend,
                )
            )
            digests[backend] = report.digest()
        assert digests["scalar"] == digests["vectorized"], (
            f"{mitigation} diverged at seed {seed}"
        )


class TestControllerDecode:
    """The controllers' flat-decode fast path vs the MediaAddress path."""

    @pytest.mark.parametrize("cls_name", ("MemoryController", "FrFcfsController"))
    def test_trace_results_identical(self, cls_name):
        import random

        from repro.dram.geometry import DRAMGeometry
        from repro.dram.mapping import SkylakeMapping
        from repro.memctrl.controller import MemoryAccess, MemoryController
        from repro.memctrl.frfcfs import FrFcfsController

        cls = {"MemoryController": MemoryController, "FrFcfsController": FrFcfsController}[cls_name]
        geom = DRAMGeometry.small()
        mapping = SkylakeMapping.for_small_geometry(geom)
        rng = random.Random(11)
        trace = [
            MemoryAccess(
                hpa=rng.randrange(geom.total_bytes // 64) * 64,
                cpu_gap_ns=rng.choice((0.0, 2.0, 10.0)),
            )
            for _ in range(800)
        ]
        fast = cls(mapping)
        assert fast._decode_flat is not None
        slow = cls(mapping)
        slow._decode_flat = None  # force the MediaAddress reference path
        a, b = fast.run_trace(list(trace)), slow.run_trace(list(trace))
        assert vars(a) == vars(b)


@pytest.fixture(scope="module")
def workload_env():
    from repro.hv import BaselineHypervisor, Machine, VmSpec
    from repro.units import KiB
    from repro.workloads import GpaTranslator

    hv = BaselineHypervisor(Machine.small(), backing_page_bytes=64 * KiB)
    vm = hv.create_vm(VmSpec(name="diff", memory_bytes=2 * MiB))
    return hv, vm, GpaTranslator(vm)


class TestWorkloadStreams:
    """Scalar trace generator vs the one-transplant numpy batch: the
    streams (addresses, kinds, quantized-exponential gaps) must be bit
    for bit the same — same MT19937 draws, same IEEE ops."""

    @pytest.mark.parametrize("workload", ("redis-a", "terasort", "mlc-reads", "mysql"))
    @pytest.mark.parametrize("seed", (0, 3))
    def test_batch_stream_bit_identical(self, workload_env, workload, seed):
        from repro.memctrl.controller import AccessKind
        from repro.workloads import generate_trace, generate_trace_batch, suite

        _, _, translator = workload_env
        spec = suite(workload, footprint_bytes=translator.limit)
        objs = list(
            generate_trace(
                spec, translator, accesses=600, seed=seed, home_socket=1
            )
        )
        batch = generate_trace_batch(
            spec, translator, accesses=600, seed=seed, home_socket=1
        )
        assert [a.hpa for a in objs] == batch.hpa.tolist()
        assert [a.kind is AccessKind.WRITE for a in objs] == batch.write.tolist()
        # Float equality must be exact, not approx: both paths index the
        # same gap table and scale with the same rounding.
        assert [a.cpu_gap_ns for a in objs] == batch.cpu_gap_ns.tolist()
        assert batch.home_socket.tolist() == [1] * 600
        rebuilt = batch.to_accesses()
        assert [vars(a) for a in objs] == [vars(a) for a in rebuilt]


class TestMemctrlBackends:
    """Controller timing across all three backends: identical
    TraceResult (every counter and every float) per configuration."""

    def _trace(self, workload_env, accesses=700):
        from repro.workloads import generate_trace, suite

        _, vm, translator = workload_env
        spec = suite("redis-a", footprint_bytes=translator.limit)
        return list(
            generate_trace(spec, translator, accesses=accesses, seed=5)
        )

    @pytest.mark.parametrize(
        "kwargs",
        (
            {},
            {"page_policy": "closed"},
            {"max_outstanding": 1},
        ),
        ids=("open", "closed", "mlp1"),
    )
    def test_controller_backend_identical(self, workload_env, kwargs):
        from repro.memctrl import MemoryController

        hv, _, _ = workload_env
        trace = self._trace(workload_env)
        results = {
            b: MemoryController(
                hv.machine.mapping, backend=b, **kwargs
            ).run_trace(list(trace))
            for b in BACKENDS
        }
        for backend in BACKENDS[1:]:
            assert vars(results["scalar"]) == vars(results[backend]), backend

    @pytest.mark.parametrize("window", (1, 7, 16))
    def test_frfcfs_backend_identical(self, workload_env, window):
        from repro.memctrl import FrFcfsController

        hv, _, _ = workload_env
        trace = self._trace(workload_env)
        results = {
            b: FrFcfsController(
                hv.machine.mapping, window=window, backend=b
            ).run_trace(list(trace))
            for b in BACKENDS
        }
        for backend in BACKENDS[1:]:
            assert vars(results["scalar"]) == vars(results[backend]), backend

    def test_run_batch_equals_run_trace(self, workload_env):
        from repro.memctrl import MemoryController
        from repro.memctrl.pipeline import AccessBatch

        hv, _, _ = workload_env
        trace = self._trace(workload_env)
        batch = AccessBatch.from_accesses(trace)
        for backend in BACKENDS:
            mc = MemoryController(hv.machine.mapping, backend=backend)
            assert vars(mc.run_batch(batch)) == vars(
                MemoryController(hv.machine.mapping, backend=backend).run_trace(
                    list(trace)
                )
            ), backend

    def test_profile_batch_matches_profile_trace(self, workload_env):
        from repro.memctrl.pipeline import AccessBatch
        from repro.memctrl.stats import profile_batch, profile_trace

        hv, _, _ = workload_env
        trace = self._trace(workload_env)
        scalar = profile_trace(hv.machine.mapping, trace)
        batch = profile_batch(hv.machine.mapping, AccessBatch.from_accesses(trace))
        assert scalar.total == batch.total
        assert scalar.per_bank.keys() == batch.per_bank.keys()
        for key, activity in scalar.per_bank.items():
            assert activity.accesses == batch.per_bank[key].accesses
            assert activity.distinct_rows == batch.per_bank[key].distinct_rows


class TestEndToEndBackends:
    """The whole workload→memctrl pipeline through run_in_vm: a machine
    on the vectorized backend must reproduce the scalar machine's
    WorkloadResult exactly (same VM placement, same trace, same time)."""

    @pytest.mark.parametrize("workload", ("redis-a", "mlc-reads"))
    def test_run_in_vm_backend_identical(self, workload):
        from repro.hv import BaselineHypervisor, Machine, VmSpec
        from repro.units import KiB
        from repro.workloads import run_in_vm

        results = {}
        for backend in BACKENDS:
            hv = BaselineHypervisor(
                Machine.small(backend=backend), backing_page_bytes=64 * KiB
            )
            vm = hv.create_vm(VmSpec(name="e2e", memory_bytes=2 * MiB))
            results[backend] = run_in_vm(hv, vm, workload, accesses=900, trial=2)
        for backend in BACKENDS[1:]:
            assert vars(results["scalar"].trace) == vars(
                results[backend].trace
            ), backend
