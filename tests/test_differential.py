"""Differential harness: the fast engines vs the scalar golden reference.

The ``SimBackend.BATCHED`` and ``SimBackend.VECTORIZED`` fast paths
(:mod:`repro.engine`) are only admissible because they are
*observationally identical* to the scalar path: same flip sets, same TRR decisions, same ECC events, same
health-monitor escalations, same clocks and counters.  These tests
enforce that contract on three levels:

1. seeded mixed programs (hammer shapes + fault plans + scrubs + guest
   I/O) through :func:`conftest.replay_program`, compared pairwise
   across all three backends — a handful of seeds in tier1, ~50 seeds
   in the tier2 fuzz job (every failure names the seed to replay);
2. the end-to-end CE-storm scenario, whose transcript/replay key must
   be backend-independent;
3. the attack stack (fuzzer campaigns) and the memory controllers,
   whose flat-decode fast path must match the MediaAddress reference.
"""

from __future__ import annotations

import pytest

from conftest import diff_transcripts, replay_program

from repro.units import MiB


BACKENDS = ("scalar", "batched", "vectorized")


def _assert_equivalent(seed: int) -> None:
    transcripts = {backend: replay_program(backend, seed) for backend in BACKENDS}
    problems = []
    for i, a in enumerate(BACKENDS):
        for b in BACKENDS[i + 1 :]:
            problems += diff_transcripts(
                seed, transcripts[a], transcripts[b], labels=(a, b)
            )
    assert not problems, (
        f"backends diverged; replay with replay_program(<backend>, {seed}):\n"
        + "\n".join(problems)
    )


class TestMixedPrograms:
    @pytest.mark.parametrize("seed", range(8))
    def test_equivalent_small_seeds(self, seed):
        _assert_equivalent(seed)

    def test_flips_actually_happen(self):
        # Guard against vacuous equivalence: at least one of the tier1
        # seeds must produce disturbance flips on both backends.
        assert any(
            replay_program("scalar", seed)["flips"] for seed in range(8)
        ), "differential seeds never flip a bit; raise pressure"


@pytest.mark.tier2
class TestDifferentialFuzz:
    """Satellite: ~50-seed fuzz sweep (separate CI job)."""

    @pytest.mark.parametrize("seed", range(100, 150))
    def test_equivalent_fuzz_seed(self, seed):
        _assert_equivalent(seed)


class TestScenarioTranscripts:
    @pytest.mark.parametrize("seed", (0, 3))
    def test_ce_storm_replay_key_backend_independent(self, seed):
        from repro.faults.scenario import run_ce_storm_scenario

        runs = {b: run_ce_storm_scenario(seed=seed, backend=b) for b in BACKENDS}
        scalar = runs["scalar"]
        for backend in BACKENDS[1:]:
            other = runs[backend]
            assert scalar.transcript == other.transcript, f"seed={seed} {backend}"
            assert scalar.replay_key() == other.replay_key(), backend
        assert all(r.success for r in runs.values())


class TestAttackStack:
    def test_fuzzer_campaign_identical(self):
        from repro.attack import attack_from_vm
        from repro.core import SilozHypervisor
        from repro.hv import Machine, VmSpec

        outcomes = {}
        logs = {}
        for backend in BACKENDS:
            hv = SilozHypervisor.boot(Machine.small(seed=7, backend=backend))
            attacker = hv.create_vm(VmSpec(name="attacker", memory_bytes=2 * MiB))
            hv.create_vm(VmSpec(name="victim", memory_bytes=2 * MiB))
            outcomes[backend] = attack_from_vm(
                hv, attacker, seed=7, pattern_budget=12
            )
            logs[backend] = hv.machine.dram.flips_log
        for backend in BACKENDS[1:]:
            assert logs["scalar"] == logs[backend], backend
            assert outcomes["scalar"].summary() == outcomes[backend].summary()
            assert (
                outcomes["scalar"].report.activations
                == outcomes[backend].report.activations
            )

    def test_blast_radius_identical(self):
        from repro.attack.blaster import measure_blast_radius
        from repro.dram.disturbance import DisturbanceProfile
        from repro.dram.geometry import DRAMGeometry
        from repro.dram.module import SimulatedDram

        geom = DRAMGeometry.small(rows_per_bank=128, rows_per_subarray=16)
        profiles = {}
        for backend in BACKENDS:
            dram = SimulatedDram(
                geom,
                profile=DisturbanceProfile.test_scale(threshold_mean=80.0),
                trr_config=None,
                seed=9,
                backend=backend,
            )
            profiles[backend] = measure_blast_radius(
                dram, activations=4000
            ).flips_by_distance
        for backend in BACKENDS[1:]:
            assert profiles["scalar"] == profiles[backend], backend
        assert profiles["scalar"], "blast measurement produced no flips"


class TestMitigationDifferential:
    """Every registered mitigation must keep the bit-identity contract:
    one micro fleet campaign per mitigation, same merged
    :class:`BakeoffReport` digest on all three backends."""

    def _micro(self, mitigation: str, backend: str, seed: int = 0):
        from repro.mitigations.bakeoff import BakeoffConfig, run_bakeoff

        return run_bakeoff(
            BakeoffConfig(
                mitigations=(mitigation,),
                hosts=2,
                vms=4,
                seed=seed,
                budget=2,
                backend=backend,
            )
        )

    @pytest.mark.parametrize("mitigation", (
        "none", "siloz", "para", "catt", "domain-buddy", "guard-rows",
    ))
    def test_bakeoff_digest_backend_independent(self, mitigation):
        reports = {b: self._micro(mitigation, b) for b in BACKENDS}
        for backend in BACKENDS[1:]:
            assert (
                reports["scalar"].mitigation_digest(mitigation)
                == reports[backend].mitigation_digest(mitigation)
            ), f"{mitigation} diverged on {backend}"
            assert reports["scalar"].digest() == reports[backend].digest()


@pytest.mark.tier2
class TestMitigationDifferentialFuzz:
    """Satellite: seed-swept mitigation bit-identity (separate CI job).

    Each seed exercises one mitigation (round-robin) on scalar vs
    vectorized — the pair that actually shares no hot-path code."""

    @pytest.mark.parametrize("seed", range(200, 250))
    def test_bakeoff_digest_fuzz_seed(self, seed):
        from repro.mitigations import mitigation_names
        from repro.mitigations.bakeoff import BakeoffConfig, run_bakeoff

        names = mitigation_names()
        mitigation = names[seed % len(names)]
        digests = {}
        for backend in ("scalar", "vectorized"):
            report = run_bakeoff(
                BakeoffConfig(
                    mitigations=(mitigation,),
                    hosts=2,
                    vms=4,
                    seed=seed,
                    budget=3,
                    backend=backend,
                )
            )
            digests[backend] = report.digest()
        assert digests["scalar"] == digests["vectorized"], (
            f"{mitigation} diverged at seed {seed}"
        )


class TestControllerDecode:
    """The controllers' flat-decode fast path vs the MediaAddress path."""

    @pytest.mark.parametrize("cls_name", ("MemoryController", "FrFcfsController"))
    def test_trace_results_identical(self, cls_name):
        import random

        from repro.dram.geometry import DRAMGeometry
        from repro.dram.mapping import SkylakeMapping
        from repro.memctrl.controller import MemoryAccess, MemoryController
        from repro.memctrl.frfcfs import FrFcfsController

        cls = {"MemoryController": MemoryController, "FrFcfsController": FrFcfsController}[cls_name]
        geom = DRAMGeometry.small()
        mapping = SkylakeMapping.for_small_geometry(geom)
        rng = random.Random(11)
        trace = [
            MemoryAccess(
                hpa=rng.randrange(geom.total_bytes // 64) * 64,
                cpu_gap_ns=rng.choice((0.0, 2.0, 10.0)),
            )
            for _ in range(800)
        ]
        fast = cls(mapping)
        assert fast._decode_flat is not None
        slow = cls(mapping)
        slow._decode_flat = None  # force the MediaAddress reference path
        a, b = fast.run_trace(list(trace)), slow.run_trace(list(trace))
        assert vars(a) == vars(b)
