"""Tests for machine-check handling: Rowhammer DoS becomes self-DoS
under Siloz (paper §1, §2.5 consequences)."""

import pytest

from repro.core import SilozHypervisor
from repro.errors import UncorrectableError
from repro.hv import BaselineHypervisor, Machine, VmSpec
from repro.hv.mce import MceHandler, MceIncident, MceOutcome
from repro.hv.vm import VmState
from repro.units import KiB, MiB


def _inject_double_flip(hv, hpa):
    """Plant an ECC-uncorrectable (2-bit) error at *hpa*."""
    media = hv.machine.mapping.decode(hpa)
    bank = media.socket_bank_index(hv.machine.geom)
    for bit in (0, 1):
        hv.machine.dram._toggle_bit(media.socket, bank, media.row, media.col * 8 + bit)


class TestHandlerPolicy:
    def setup_method(self):
        self.hv = SilozHypervisor.boot(Machine.small(seed=61))
        self.vm = self.hv.create_vm(VmSpec(name="tenant", memory_bytes=2 * MiB))
        self.mce = MceHandler(self.hv)

    def test_error_in_vm_kills_vm(self):
        hpa = self.vm.translate(0x5000)
        _inject_double_flip(self.hv, hpa)
        result = self.mce.guarded_read("tenant", 0x5000, 64)
        assert isinstance(result, MceIncident)
        assert result.outcome is MceOutcome.VM_KILLED
        assert result.victim_vm == "tenant"
        assert self.vm.state is VmState.SHUTDOWN

    def test_failed_page_offlined(self):
        hpa = self.vm.translate(0x5000)
        _inject_double_flip(self.hv, hpa)
        self.mce.guarded_read("tenant", 0x5000, 64)
        assert self.hv.offline.is_offline(hpa - hpa % (4 * KiB))

    def test_clean_read_passes_through(self):
        self.vm.write(0x5000, b"fine")
        assert self.mce.guarded_read("tenant", 0x5000, 4) == b"fine"
        assert self.mce.incidents == []

    def test_host_memory_error_panics(self):
        host_node = self.hv.topology.node(0)
        hpa = host_node.alloc_bytes(4 * KiB)
        _inject_double_flip(self.hv, hpa)
        incident = self.mce.handle(UncorrectableError("uc", address=hpa))
        assert incident.outcome is MceOutcome.HOST_PANIC

    def test_guard_row_error_absorbed(self):
        guard = self.hv.provision_result.guard_ranges[0][0]
        incident = self.mce.handle(UncorrectableError("uc", address=guard.start))
        assert incident.outcome is MceOutcome.GUARD_ABSORBED

    def test_addressless_error_rejected(self):
        with pytest.raises(ValueError):
            self.mce.handle(UncorrectableError("uc"))

    def test_repeated_ue_on_same_page_absorbed(self):
        """Second UE on a page the first already offlined: no kill, no
        crash — the offlined page absorbs it like a guard row."""
        hpa = self.vm.translate(0x5000)
        _inject_double_flip(self.hv, hpa)
        first = self.mce.guarded_read("tenant", 0x5000, 64)
        assert first.outcome is MceOutcome.VM_KILLED
        second = self.mce.handle(UncorrectableError("uc", address=hpa))
        assert second.outcome is MceOutcome.GUARD_ABSORBED
        assert len(self.mce.incidents) == 2

    def test_ue_in_freed_host_memory_panics_cleanly(self):
        """A UE in memory that was allocated and freed again is host
        memory with no owner: classified HOST_PANIC, handler survives."""
        host_node = self.hv.topology.node(0)
        hpa = host_node.alloc_bytes(4 * KiB)
        host_node.free_addr(hpa)
        _inject_double_flip(self.hv, hpa)
        incident = self.mce.handle(UncorrectableError("uc", address=hpa))
        assert incident.outcome is MceOutcome.HOST_PANIC
        assert incident.victim_vm is None

    def test_offline_failure_is_logged_not_fatal(self):
        """_maybe_offline catches only expected offlining failures; a
        busy page leaves the VM killed and the page online."""
        vm2 = self.hv.create_vm(VmSpec(name="tenant2", memory_bytes=2 * MiB))
        hpa = self.vm.translate(0x5000)
        page = hpa - hpa % (4 * KiB)
        _inject_double_flip(self.hv, hpa)
        # Simulate the page staying busy at offline time.
        from repro.errors import OfflineError

        calls = []
        original = self.hv.offline.offline

        def failing_offline(node, target, reason):
            calls.append(target)
            raise OfflineError("synthetic: page busy")

        self.hv.offline.offline = failing_offline
        try:
            incident = self.mce.handle(UncorrectableError("uc", address=hpa))
        finally:
            self.hv.offline.offline = original
        assert incident.outcome is MceOutcome.VM_KILLED
        assert calls and calls[0].start == page
        assert not self.hv.offline.is_offline(page)
        assert vm2.state is VmState.RUNNING

    def test_programming_errors_propagate(self):
        """The bare ``except Exception`` is gone: only OfflineError /
        MmError are treated as best-effort; anything else is a bug and
        must surface."""
        hpa = self.vm.translate(0x5000)
        _inject_double_flip(self.hv, hpa)

        def broken_offline(node, target, reason):
            raise TypeError("bug in offlining")

        self.hv.offline.offline = broken_offline
        with pytest.raises(TypeError):
            self.mce.handle(UncorrectableError("uc", address=hpa))


class TestDosBlastRadius:
    """The paper's availability story, end to end."""

    def test_baseline_attacker_can_dos_victim(self):
        """Baseline: the attacker plants an uncorrectable flip in the
        co-located victim's memory; the victim's own read kills it."""
        hv = BaselineHypervisor(Machine.small(seed=62), backing_page_bytes=64 * KiB)
        hv.create_vm(VmSpec(name="attacker", memory_bytes=2 * MiB))
        victim = hv.create_vm(VmSpec(name="victim", memory_bytes=2 * MiB))
        mce = MceHandler(hv)
        # Model the hammering outcome: a 2-bit flip in victim memory
        # (test_attack shows flips really reach victim rows on baseline).
        _inject_double_flip(hv, victim.translate(0x0))
        result = mce.guarded_read("victim", 0x0, 64)
        assert isinstance(result, MceIncident)
        assert result.victim_vm == "victim"
        assert victim.state is VmState.SHUTDOWN

    def test_siloz_uncorrectable_flips_only_self_dos(self):
        """Siloz: run a real hammering campaign, then machine-check every
        uncorrectable word found by the scrubber — only the attacker can
        be affected, because all flips are in its own groups."""
        from repro.attack import attack_from_vm
        from repro.dram.ecc import EccOutcome

        hv = SilozHypervisor.boot(Machine.small(seed=63))
        attacker = hv.create_vm(VmSpec(name="attacker", memory_bytes=2 * MiB))
        victim = hv.create_vm(VmSpec(name="victim", memory_bytes=2 * MiB))
        outcome = attack_from_vm(hv, attacker, seed=63, pattern_budget=40)
        assert outcome.report.flip_count > 0
        mce = MceHandler(hv, offline_failed_pages=False)
        geom = hv.machine.geom
        for event in hv.machine.dram.patrol_scrub():
            if event.outcome is not EccOutcome.UNCORRECTABLE:
                continue
            from repro.dram.media import MediaAddress

            media = MediaAddress.from_socket_bank(
                geom, event.socket, event.bank, event.row, 0
            )
            incident = mce.handle(
                UncorrectableError("uc", address=hv.machine.mapping.encode(media))
            )
            assert incident.victim_vm != "victim"
        assert victim.state is VmState.RUNNING
