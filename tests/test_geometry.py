"""Unit tests for repro.dram.geometry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dram.geometry import DRAMGeometry
from repro.errors import GeometryError
from repro.units import GiB, KiB, MiB


class TestPaperDefault:
    """Table 2 numbers must fall out of the default geometry."""

    def setup_method(self):
        self.geom = DRAMGeometry.paper_default()

    def test_banks_per_socket_is_192(self):
        assert self.geom.banks_per_socket == 192

    def test_bank_is_1_gib(self):
        assert self.geom.bank_bytes == 1 * GiB

    def test_socket_capacity_is_192_gib(self):
        assert self.geom.socket_bytes == 192 * GiB

    def test_total_capacity_is_384_gib(self):
        assert self.geom.total_bytes == 384 * GiB

    def test_dimm_is_32_gib(self):
        assert self.geom.dimm_bytes == 32 * GiB

    def test_subarray_group_is_1_5_gib(self):
        # 192 banks * 1024 rows * 8 KiB (paper §4.1)
        assert self.geom.subarray_group_bytes == 1536 * MiB

    def test_128_subarrays_per_bank(self):
        assert self.geom.subarrays_per_bank == 128

    def test_row_group_is_1_5_mib(self):
        assert self.geom.row_group_bytes == 192 * 8 * KiB

    def test_groups_per_socket(self):
        assert self.geom.groups_per_socket == 128
        assert self.geom.total_groups == 256


class TestSubarraySizeVariants:
    """§7.4: group size scales linearly with the subarray-size parameter."""

    @pytest.mark.parametrize(
        "rows,expected_gib",
        [(512, 0.75), (1024, 1.5), (2048, 3.0)],
    )
    def test_group_size_scaling(self, rows, expected_gib):
        geom = DRAMGeometry.paper_default().with_subarray_rows(rows)
        assert geom.subarray_group_bytes == int(expected_gib * GiB)

    def test_variant_keeps_hardware_shape(self):
        base = DRAMGeometry.paper_default()
        variant = base.with_subarray_rows(512)
        assert variant.banks_per_socket == base.banks_per_socket
        assert variant.rows_per_bank == base.rows_per_bank
        assert variant.groups_per_socket == 2 * base.groups_per_socket


class TestValidation:
    def test_rejects_non_divisible_subarray(self):
        with pytest.raises(GeometryError):
            DRAMGeometry(rows_per_bank=100, rows_per_subarray=33)

    def test_rejects_zero_fields(self):
        with pytest.raises(GeometryError):
            DRAMGeometry(sockets=0)

    def test_rejects_non_power_of_two_row_bytes(self):
        with pytest.raises(GeometryError):
            DRAMGeometry(row_bytes=3000)

    def test_row_bounds_checked(self):
        geom = DRAMGeometry.small()
        with pytest.raises(GeometryError):
            geom.subarray_of_row(geom.rows_per_bank)
        with pytest.raises(GeometryError):
            geom.subarray_of_row(-1)


class TestSubarrayMath:
    def setup_method(self):
        self.geom = DRAMGeometry.small()  # 8-row subarrays

    def test_subarray_of_row(self):
        assert self.geom.subarray_of_row(0) == 0
        assert self.geom.subarray_of_row(7) == 0
        assert self.geom.subarray_of_row(8) == 1

    def test_subarray_row_range(self):
        assert list(self.geom.subarray_row_range(1)) == list(range(8, 16))

    def test_subarray_row_range_bounds(self):
        with pytest.raises(GeometryError):
            self.geom.subarray_row_range(self.geom.subarrays_per_bank)

    def test_same_subarray(self):
        assert self.geom.same_subarray(0, 7)
        assert not self.geom.same_subarray(7, 8)

    @given(st.integers(min_value=0, max_value=63))
    def test_row_in_its_own_subarray_range(self, row):
        geom = DRAMGeometry.small()
        assert row in geom.subarray_row_range(geom.subarray_of_row(row))

    def test_describe_mentions_capacity(self):
        text = DRAMGeometry.paper_default().describe()
        assert "384 GiB" in text
        assert "1.5 GiB" in text
