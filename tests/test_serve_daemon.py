"""End-to-end tests for the ``repro serve`` daemon as a subprocess.

These drive the real CLI entry point over a UNIX socket: boot the
daemon, talk to it with the synchronous :class:`ServeClient`, and
exercise both shutdown paths — the ``shutdown`` op and SIGTERM with a
request still in flight.  Both must drain gracefully: the in-flight
response arrives, the final metrics summary prints, and the process
exits 0.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.serve import ServeClient, ServeFailure

MiB = 1024 * 1024

#: How long we give the daemon to print its ready line / exit.
STARTUP_TIMEOUT_S = 30.0


def _spawn_daemon(tmp_path, *extra_args):
    """Start ``repro serve --socket <tmp>`` and wait for the ready line.

    Returns ``(proc, socket_path)``; the caller owns both (terminate the
    process and read its remaining output via ``communicate``).
    """
    socket_path = str(tmp_path / "serve.sock")
    env = dict(os.environ, PYTHONPATH="src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--socket", socket_path, "--hosts", "1",
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    assert proc.stdout is not None
    ready = proc.stdout.readline()
    if "serve: listening on" not in ready:
        proc.kill()
        _, stderr = proc.communicate(timeout=STARTUP_TIMEOUT_S)
        pytest.fail(f"daemon never became ready: {ready!r}\n{stderr}")
    return proc, socket_path


def _finish(proc):
    """Collect the daemon's remaining stdout/stderr and return code.

    Kills the daemon if it never exits, so an assertion failure earlier
    in the test surfaces instead of being masked by a hang here.
    """
    try:
        stdout, stderr = proc.communicate(timeout=STARTUP_TIMEOUT_S)
    except subprocess.TimeoutExpired:
        proc.kill()
        stdout, stderr = proc.communicate()
    return proc.returncode, stdout, stderr


class TestDaemonRoundTrip:
    """The daemon answers the full op set over a real socket."""

    def test_round_trip_and_shutdown_op(self, tmp_path):
        """info/place/health/metrics/evict round-trip, then the
        ``shutdown`` op drains the daemon to a clean exit 0."""
        proc, socket_path = _spawn_daemon(tmp_path)
        try:
            with ServeClient(socket_path=socket_path) as client:
                info = client.info()
                assert info["protocol"] == 1
                assert info["config"]["hosts"] == 1

                placed = client.place_vm("vm-a", 2 * MiB)
                assert placed["host"] == 0

                health = client.health()
                assert health["draining"] is False
                assert health["hosts"][0]["vms"] == 1

                metrics = client.metrics()
                assert metrics["serve"]["requests"] >= 3

                with pytest.raises(ServeFailure, match="not-found"):
                    client.evict_vm("no-such-vm")
                assert client.evict_vm("vm-a")["host"] == 0

                digest = client.shutdown()["digest"]
                assert len(digest) == 64
        finally:
            code, stdout, stderr = _finish(proc)
        assert code == 0, stderr
        assert "serve: final summary" in stdout
        assert "serve: final state digest" in stdout

    def test_sigterm_finishes_inflight_request(self, tmp_path):
        """SIGTERM while ``run_attack`` is in flight: the response still
        arrives, the summary prints, and the daemon exits 0."""
        proc, socket_path = _spawn_daemon(tmp_path, "--attack-budget", "8")
        try:
            with ServeClient(socket_path=socket_path) as client:
                client.place_vm("victim", 2 * MiB)
                # Fire SIGTERM shortly after the attack request is on
                # the wire; the blocking read below must still get its
                # response (the drain finishes in-flight work).
                killer = threading.Timer(
                    0.05, proc.send_signal, args=(signal.SIGTERM,)
                )
                killer.start()
                try:
                    result = client.run_attack(host=0, budget=8)
                finally:
                    killer.join()
                assert result["flips"] >= 0
                assert "contained" in result
        finally:
            code, stdout, stderr = _finish(proc)
        assert code == 0, stderr
        assert "serve: final summary" in stdout

    def test_sigint_idle_daemon_exits_clean(self, tmp_path):
        """SIGINT with no traffic at all still drains to exit 0."""
        proc, _ = _spawn_daemon(tmp_path)
        # Give the loop a beat so the signal handler is installed.
        time.sleep(0.1)
        proc.send_signal(signal.SIGINT)
        code, stdout, stderr = _finish(proc)
        assert code == 0, stderr
        assert "serve: final summary — 0 request(s)" in stdout
