"""Unit tests for the Rowhammer/RowPress disturbance model (§2.5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.disturbance import (
    BitFlip,
    DisturbanceModel,
    DisturbanceProfile,
)
from repro.dram.geometry import DRAMGeometry
from repro.errors import DramError

GEOM = DRAMGeometry.small()  # 64 rows/bank, 8-row subarrays


def hammer(model, row, count, socket=0, bank=0):
    flips = []
    for i in range(count):
        flips.extend(model.on_activate(socket, bank, row, when=float(i)))
    return flips


class TestProfiles:
    def test_rejects_bad_threshold(self):
        with pytest.raises(DramError):
            DisturbanceProfile(threshold_mean=0)

    def test_rejects_empty_weights(self):
        with pytest.raises(DramError):
            DisturbanceProfile(distance_weights=())

    def test_fleet_has_six_distinct_dimms(self):
        fleet = DisturbanceProfile.dimm_fleet()
        assert [p.name for p in fleet] == ["A", "B", "C", "D", "E", "F"]
        assert len({p.threshold_mean for p in fleet}) == 6

    def test_blast_radius_from_weights(self):
        assert DisturbanceProfile(distance_weights=(1.0,)).blast_radius == 1
        assert DisturbanceProfile().blast_radius == 2


class TestHammering:
    def setup_method(self):
        self.model = DisturbanceModel(
            GEOM, DisturbanceProfile.test_scale(threshold_mean=32.0), seed=7
        )

    def test_no_flips_below_threshold(self):
        flips = hammer(self.model, row=3, count=5)
        assert flips == []

    def test_flips_appear_past_threshold(self):
        flips = hammer(self.model, row=3, count=400)
        assert flips

    def test_flips_hit_only_neighbors(self):
        hammer(self.model, row=3, count=400)
        victim_rows = {f.row for f in self.model.flips}
        assert victim_rows <= {1, 2, 4, 5}  # blast radius 2 around row 3

    def test_aggressor_recorded(self):
        hammer(self.model, row=3, count=400)
        assert all(f.aggressor_row == 3 for f in self.model.flips)

    def test_flips_never_cross_subarray_boundary(self):
        """The paper's foundational fact: rows 7 and 8 are in different
        subarrays, so hammering row 7 cannot flip bits in row 8+."""
        hammer(self.model, row=7, count=2000)
        assert self.model.flips  # plenty of pressure applied
        assert all(f.row < 8 for f in self.model.flips)

    def test_boundary_row_on_other_side(self):
        hammer(self.model, row=8, count=2000)
        assert self.model.flips
        assert all(8 <= f.row < 16 for f in self.model.flips)

    def test_edge_of_bank_clipped(self):
        hammer(self.model, row=0, count=2000)
        assert all(0 <= f.row < GEOM.rows_per_bank for f in self.model.flips)

    def test_activation_refreshes_self(self):
        # Alternate hammering rows 2 and 4: row 3 accumulates from both,
        # but rows 2/4 refresh each other... activation of a row clears
        # its own pressure.
        for i in range(50):
            self.model.on_activate(0, 0, 2, float(i))
        assert self.model.pressure_on(0, 0, 3) > 0
        self.model.on_activate(0, 0, 3, 50.0)
        assert self.model.pressure_on(0, 0, 3) == 0.0

    def test_distance_weights_decay(self):
        hammer(self.model, row=3, count=20)
        assert self.model.pressure_on(0, 0, 2) > self.model.pressure_on(0, 0, 1)

    def test_banks_independent(self):
        hammer(self.model, row=3, count=400, bank=0)
        assert not [f for f in self.model.flips if f.bank != 0]
        assert self.model.pressure_on(0, 1, 2) == 0.0


class TestRefresh:
    def setup_method(self):
        self.model = DisturbanceModel(
            GEOM, DisturbanceProfile.test_scale(threshold_mean=32.0), seed=1
        )

    def test_row_refresh_clears_pressure(self):
        hammer(self.model, row=3, count=10)
        self.model.on_refresh_row(0, 0, 2)
        assert self.model.pressure_on(0, 0, 2) == 0.0
        assert self.model.pressure_on(0, 0, 4) > 0.0

    def test_full_refresh_clears_everything(self):
        hammer(self.model, row=3, count=10)
        self.model.on_refresh_all()
        assert self.model.pressure_on(0, 0, 2) == 0.0
        assert self.model.pressure_on(0, 0, 4) == 0.0

    def test_periodic_refresh_prevents_flips(self):
        # Hammering below threshold per window, refreshed between windows,
        # never flips: this is why thresholds are per-refresh-window.
        for _ in range(20):
            hammer(self.model, row=3, count=8)
            self.model.on_refresh_all()
        assert self.model.flips == []


class TestRowPress:
    def setup_method(self):
        self.model = DisturbanceModel(
            GEOM, DisturbanceProfile.test_scale(threshold_mean=32.0), seed=3
        )

    def test_long_open_time_flips_without_many_acts(self):
        flips = []
        for i in range(8):
            flips.extend(self.model.on_activate(0, 0, 3, float(i)))
            flips.extend(
                self.model.on_row_open_time(0, 0, 3, seconds=0.05, when=float(i))
            )
        assert flips  # RowPress pressure did the work

    def test_rowpress_respects_subarray_isolation(self):
        for i in range(20):
            self.model.on_activate(0, 0, 7, float(i))
            self.model.on_row_open_time(0, 0, 7, seconds=0.05, when=float(i))
        assert all(f.row < 8 for f in self.model.flips)

    def test_zero_open_time_is_noop(self):
        assert self.model.on_row_open_time(0, 0, 3, 0.0, 0.0) == []

    def test_negative_open_time_rejected(self):
        with pytest.raises(DramError):
            self.model.on_row_open_time(0, 0, 3, -1.0, 0.0)


class TestDeterminism:
    def test_same_seed_same_flips(self):
        runs = []
        for _ in range(2):
            model = DisturbanceModel(
                GEOM, DisturbanceProfile.test_scale(), seed=42
            )
            hammer(model, row=3, count=500)
            runs.append([(f.row, f.bit) for f in model.flips])
        assert runs[0] == runs[1]

    def test_different_seeds_differ(self):
        results = []
        for seed in (1, 2):
            model = DisturbanceModel(
                GEOM, DisturbanceProfile.test_scale(), seed=seed
            )
            hammer(model, row=3, count=500)
            results.append([(f.row, f.bit) for f in model.flips])
        assert results[0] != results[1]


class TestPropertyContainment:
    @given(
        row=st.integers(0, GEOM.rows_per_bank - 1),
        count=st.integers(1, 300),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=40, deadline=None)
    def test_flips_always_in_aggressor_subarray(self, row, count, seed):
        """Property: no matter the aggressor or intensity, every flip
        lands in the aggressor's subarray (paper §2.5 / Table 3)."""
        model = DisturbanceModel(
            GEOM, DisturbanceProfile.test_scale(threshold_mean=16.0), seed=seed
        )
        hammer(model, row=row, count=count)
        subarray = GEOM.subarray_of_row(row)
        assert all(f.subarray(GEOM) == subarray for f in model.flips)

    @given(st.integers(0, GEOM.rows_per_bank - 1))
    def test_flip_bit_range(self, row):
        model = DisturbanceModel(
            GEOM, DisturbanceProfile.test_scale(threshold_mean=4.0), seed=0
        )
        hammer(model, row=row, count=100)
        assert all(0 <= f.bit < GEOM.row_bytes * 8 for f in model.flips)
