"""Tests for the observability layer (``repro.obs``).

Covers the ring-buffered tracer, histogram bucket math, the
zero-cost-when-disabled contract of the hot-path instrumentation, the
JSONL / Chrome exporters, and the differential guarantee that the
scalar and batched backends emit identical deterministic event
sequences for the same seed.
"""

from __future__ import annotations

import json

import pytest

from conftest import replay_program
from repro import obs
from repro.obs.events import (
    ActBatchEvent,
    FlipEvent,
    RefreshWindowEvent,
    SpanEvent,
    TrrSampleEvent,
    event_from_payload,
    signature_of,
)
from repro.obs.export import (
    ExportError,
    read_jsonl,
    render_summary,
    sequence_signature,
    summarize,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    COUNT_EDGES,
    Histogram,
    MetricsError,
    MetricsRegistry,
)
from repro.obs.tracer import Tracer, TracerError


@pytest.fixture(autouse=True)
def _obs_clean_slate():
    """Every test starts and finishes with observability fully off."""
    obs.disable(reset=True)
    yield
    obs.disable(reset=True)


def _flip(row: int, when: float = 0.0) -> FlipEvent:
    return FlipEvent(socket=0, bank=0, row=row, bit=1, aggressor_row=2, when=when)


class TestTracer:
    def test_records_in_order(self):
        tr = Tracer(capacity=8)
        for row in range(5):
            tr.record(_flip(row))
        assert [e.row for e in tr.events()] == [0, 1, 2, 3, 4]
        assert tr.emitted == 5
        assert tr.dropped == 0

    def test_ring_evicts_oldest(self):
        tr = Tracer(capacity=4)
        for row in range(7):
            tr.record(_flip(row))
        assert [e.row for e in tr.events()] == [3, 4, 5, 6]
        assert tr.emitted == 7
        assert tr.dropped == 3
        assert len(tr) == 4

    def test_last_clock_tracks_when(self):
        tr = Tracer()
        tr.record(_flip(0, when=1.5))
        tr.record(ActBatchEvent(socket=0, bank=0, rows=3, when=None))
        assert tr.last_clock == 1.5

    def test_clear(self):
        tr = Tracer(capacity=2)
        for row in range(5):
            tr.record(_flip(row))
        tr.clear()
        assert tr.events() == [] and tr.emitted == 0 and tr.dropped == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(TracerError):
            Tracer(capacity=0)


class TestHistogram:
    def test_bucket_math(self):
        h = Histogram("t", (1, 2, 4, 8))
        for v in (0.5, 1, 1.5, 2, 3, 9, 100):
            h.observe(v)
        # (-inf,1] (1,2] (2,4] (4,8] (8,inf]
        assert h.buckets == [2, 2, 1, 0, 2]
        assert h.count == 7
        assert h.total == pytest.approx(117.0)
        assert h.min == 0.5 and h.max == 100
        assert h.mean == pytest.approx(117.0 / 7)

    def test_bucket_bounds(self):
        h = Histogram("t", (1, 2))
        assert h.bucket_bounds() == [
            (float("-inf"), 1.0),
            (1.0, 2.0),
            (2.0, float("inf")),
        ]

    def test_edges_must_increase(self):
        with pytest.raises(MetricsError):
            Histogram("t", (2, 1))
        with pytest.raises(MetricsError):
            Histogram("t", (1, 1, 2))
        with pytest.raises(MetricsError):
            Histogram("t", ())


class TestMetricsRegistry:
    def test_counter_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(2.5)
        assert reg.counter("x").value == 3.5
        with pytest.raises(MetricsError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("x")
        g.set(10)
        g.add(-3)
        assert g.value == 7

    def test_fold_event_derives_counters(self):
        reg = MetricsRegistry()
        reg.fold_event(ActBatchEvent(socket=0, bank=0, rows=64))
        reg.fold_event(_flip(1))
        reg.fold_event(_flip(2))
        reg.fold_event(SpanEvent(name="phase", wall_ns=5000))
        snap = reg.snapshot()
        assert snap["counters"]["dram.flips"] == 2
        assert snap["counters"]["dram.act_batches"] == 1
        assert snap["counters"]["dram.batched_acts"] == 64
        assert snap["histograms"]["span.phase.wall_ns"]["count"] == 1

    def test_render_text(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc(3)
        reg.gauge("c").set(1.5)
        reg.histogram("h", (1, 2)).observe(1.5)
        text = reg.render_text()
        assert "counter a.b 3" in text
        assert "gauge c 1.5" in text
        assert "histogram h count=1" in text

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestDisabledPath:
    """The zero-cost contract: disabled tracing constructs nothing."""

    def test_emit_while_disabled_is_safe_noop(self):
        obs.emit(_flip(0))  # must not raise, must not record anywhere
        assert obs.tracer() is None

    def test_span_while_disabled_is_null(self):
        span = obs.span("x")
        assert span is obs.NULL_SPAN
        with span:
            pass

    def test_hot_path_emits_nothing_while_disabled(self, monkeypatch):
        from repro.hv.machine import Machine

        calls = []
        monkeypatch.setattr(obs, "emit", lambda e: calls.append(e))
        dram = Machine.small(seed=1, backend="batched").dram
        dram.activate_batch(0, 0, [10, 12] * 500)
        dram.patrol_scrub()
        assert calls == []

    def test_enable_disable_round_trip(self):
        tr = obs.enable(reset=True)
        obs.emit(_flip(0))
        assert tr.emitted == 1
        obs.disable()
        obs.emit(_flip(1))  # dropped: flag is off
        assert tr.emitted == 1
        # Re-enabling without reset keeps the buffer.
        assert obs.enable() is tr
        assert len(tr.events()) == 1


class TestExport:
    def _events(self):
        return [
            ActBatchEvent(socket=0, bank=1, rows=8, when=0.25),
            _flip(5, when=0.5),
            TrrSampleEvent(socket=0, bank=1, row=9, when=0.75),
            SpanEvent(name="phase", wall_ns=1234, when=None),
        ]

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        events = self._events()
        assert write_jsonl(path, events) == 4
        back = read_jsonl(path)
        assert back == events

    def test_jsonl_lines_are_valid_json(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_jsonl(path, self._events())
        for i, line in enumerate(path.read_text().splitlines()):
            record = json.loads(line)
            assert record["seq"] == i and "kind" in record

    def test_jsonl_bad_line_raises_with_lineno(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "flip"}\nnot-json\n')
        with pytest.raises(ExportError, match="2"):
            read_jsonl(path)

    def test_chrome_trace_shape(self, tmp_path):
        doc = to_chrome_trace(self._events())
        assert doc["traceEvents"][0]["ph"] == "M"  # process-name metadata
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(instants) == 3 and len(spans) == 1
        # Simulated seconds become microseconds on the timeline.
        assert instants[0]["ts"] == pytest.approx(0.25e6)
        # The clockless span inherits the last clock seen on the stream.
        assert spans[0]["ts"] == pytest.approx(0.75e6)
        assert spans[0]["dur"] == pytest.approx(1234 / 1e3)
        path = tmp_path / "ct.json"
        assert write_chrome_trace(path, self._events()) == 5
        json.loads(path.read_text())  # must be a valid JSON document

    def test_sequence_signature_excludes_spans(self):
        sigs = sequence_signature(self._events())
        assert len(sigs) == 3
        assert all(s[0] != "span" for s in sigs)
        assert signature_of(SpanEvent(name="x", wall_ns=1)) is None

    def test_summarize_and_render(self):
        summary = summarize(self._events())
        assert summary["events"] == 4
        assert summary["by_kind"]["flip"] == 1
        assert summary["first_clock"] == 0.25 and summary["last_clock"] == 0.75
        text = render_summary(summary, dropped=2)
        assert "trace events: 4 (dropped: 2)" in text

    def test_event_from_payload_unknown_kind(self):
        with pytest.raises(KeyError):
            event_from_payload("nope", {})


class TestSpans:
    def test_span_times_and_folds(self):
        obs.enable(reset=True)
        with obs.span("unit.test", sim_when=1.0) as span:
            sum(range(100))
        assert span.wall_ns >= 0
        events = obs.tracer().events()
        assert events and events[-1].kind == "span"
        assert events[-1].when == 1.0
        hist = obs.metrics_snapshot()["histograms"]["span.unit.test.wall_ns"]
        assert hist["count"] == 1


class TestInstrumentation:
    """Events fire from the real hot paths when enabled."""

    def test_hammer_emits_batch_and_flip_events(self):
        from repro.hv.machine import Machine

        obs.enable(reset=True)
        dram = Machine.small(seed=11, backend="batched").dram
        dram.activate_batch(0, 0, [100, 102] * 3000)
        kinds = summarize(obs.tracer().events())["by_kind"]
        assert kinds["act_batch"] == 1
        assert kinds["flip"] == len(dram.disturbance.flips)
        snap = obs.metrics_snapshot()
        assert snap["counters"]["dram.flips"] == kinds["flip"]
        assert snap["gauges"]["machine.sockets"] == 1

    def test_refresh_window_event(self):
        from repro.dram.geometry import DRAMGeometry
        from repro.dram.module import SimulatedDram

        obs.enable(reset=True)
        dram = SimulatedDram(DRAMGeometry.small())
        dram.advance_time(dram.refresh_window * 1.5)
        dram.advance_time(dram.refresh_window * 1.5)
        kinds = summarize(obs.tracer().events())["by_kind"]
        assert kinds["refresh_window"] >= 2

    def test_ce_storm_scenario_covers_runtime_stack(self):
        from repro.faults.scenario import run_ce_storm_scenario

        obs.enable(reset=True)
        result = run_ce_storm_scenario(seed=7, backend="batched")
        assert result.success
        kinds = summarize(obs.tracer().events())["by_kind"]
        for expected in (
            "fault_injection",
            "ecc_word",
            "health_transition",
            "remap",
            "remediation",
            "span",
        ):
            assert expected in kinds, f"missing {expected!r} in {kinds}"
        counters = obs.metrics_snapshot()["counters"]
        assert counters["health.to_offlined"] >= 1
        assert counters["hv.remaps"] >= 1


class TestBackendEquivalence:
    """Scalar and batched backends emit identical deterministic traces."""

    @pytest.mark.parametrize("seed", [7, 21])
    def test_ce_storm_sequences_match(self, seed):
        from repro.faults.scenario import run_ce_storm_scenario

        sigs = {}
        for backend in ("scalar", "batched"):
            obs.enable(reset=True)
            run_ce_storm_scenario(seed=seed, backend=backend)
            sigs[backend] = sequence_signature(obs.tracer().events())
            obs.disable(reset=True)
        assert sigs["scalar"], "scenario emitted no deterministic events"
        assert sigs["scalar"] == sigs["batched"]

    @pytest.mark.parametrize("seed", [3, 12])
    def test_replay_program_sequences_match(self, seed):
        sigs = {}
        for backend in ("scalar", "batched"):
            obs.enable(reset=True)
            replay_program(backend, seed)
            sigs[backend] = sequence_signature(obs.tracer().events())
            obs.disable(reset=True)
        assert sigs["scalar"], "replay emitted no deterministic events"
        assert sigs["scalar"] == sigs["batched"]

    def test_tracing_does_not_perturb_results(self):
        """Tracing must not consume RNG: same transcript on or off."""
        plain = replay_program("batched", 5)
        obs.enable(reset=True)
        traced = replay_program("batched", 5)
        obs.disable(reset=True)
        assert plain == traced
