"""Documentation-coverage meta tests.

Every public module, class, and function in the library must carry a
docstring (deliverable (e): doc comments on every public item), and the
repo-level documents must exist and reference each other.
"""

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


class TestDocstrings:
    @pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
    def test_module_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), module.__name__

    @pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
    def test_public_items_documented(self, module):
        undocumented = []
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-exports are documented at their source
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
            if inspect.isclass(obj):
                for mname, member in vars(obj).items():
                    if mname.startswith("_") or not inspect.isfunction(member):
                        continue
                    if not (member.__doc__ and member.__doc__.strip()):
                        # Tiny accessors are self-describing; everything
                        # else needs words.
                        if len(inspect.getsource(member).splitlines()) > 6:
                            undocumented.append(f"{name}.{mname}")
        assert not undocumented, f"{module.__name__}: {undocumented}"


class TestRepoDocs:
    def test_documents_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            path = REPO_ROOT / name
            assert path.exists() and path.stat().st_size > 1000, name

    def test_readme_links_design_docs(self):
        readme = (REPO_ROOT / "README.md").read_text()
        assert "DESIGN.md" in readme and "EXPERIMENTS.md" in readme

    def test_design_names_the_paper(self):
        design = (REPO_ROOT / "DESIGN.md").read_text()
        assert "Siloz" in design and "SOSP 2023" in design

    def test_experiments_covers_every_figure(self):
        experiments = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        for artifact in (
            "Table 1",
            "Table 2",
            "Table 3",
            "Figure 4",
            "Figure 5",
            "Figure 6",
            "Figure 7",
            "§8.3",
            "§4.1",
        ):
            assert artifact in experiments, artifact

    def test_every_bench_listed_in_readme(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for bench in (REPO_ROOT / "benchmarks").glob("bench_*.py"):
            assert bench.name in readme, bench.name
