"""Bake-off harness + attacker-vs-mitigation matrix tests.

Two layers:

1. **Matrix** — each mitigation's *documented* containment holes must
   reproduce, and its documented strengths must hold, under seeded
   fuzzing (`attack_from_vm`) and deterministic targeted hammering
   (``activate_batch`` on tenant-boundary rows).  A hole that stops
   reproducing means the model drifted; a strength that fails means the
   mitigation broke.
2. **Harness** — :mod:`repro.mitigations.bakeoff` must produce
   worker-count- and backend-independent reports, a comparison table,
   correct CLI exit codes, and trace events that fold into metrics.
"""

from __future__ import annotations

import pytest

from repro.attack import attack_from_vm
from repro.attack.runner import rows_owned_by_vm
from repro.errors import MitigationError
from repro.hv import Machine, VmSpec
from repro.mitigations import make_mitigation
from repro.mitigations.bakeoff import BakeoffConfig, BakeoffReport, run_bakeoff
from repro.units import KiB, MiB

#: Pattern budget at which the unmitigated shared pool reliably leaks
#: (cumulative edge pressure; see BakeoffConfig's default).
BUDGET = 150
SEEDS = range(6)


def _boot(name: str, seed: int = 0, backend: str = "vectorized", **knobs):
    mitigation = make_mitigation(name, **knobs)
    hv = mitigation.boot(Machine.small(seed=seed, backend=backend))
    mitigation.attach(hv, seed=seed)
    return mitigation, hv


def _two_tenants(hv, size=1 * MiB, size_b=None):
    a = hv.create_vm(VmSpec(name="attacker", memory_bytes=size))
    b = hv.create_vm(VmSpec(name="victim", memory_bytes=size_b or size))
    return a, b


def _victim_flips(hv, victim) -> list:
    owned = rows_owned_by_vm(hv, victim)
    return [
        f
        for f in hv.machine.dram.flips_log
        if f.row in set(owned.get(f.socket, ()))
    ]


def _fuzz_victim_totals(name: str, seeds=SEEDS, budget=BUDGET, **knobs):
    """(victim flip total, escape total, per-seed victim counts)."""
    per_seed = []
    escapes = 0
    for seed in seeds:
        mitigation, hv = _boot(name, seed=seed, **knobs)
        attacker, victim = _two_tenants(hv)
        outcome = attack_from_vm(hv, attacker, seed=seed, pattern_budget=budget)
        per_seed.append(len(outcome.victim_flips))
        escapes += len(outcome.flips_escaped)
    return sum(per_seed), escapes, per_seed


class TestMatrixSharedPool:
    """`none`: adjacent tenants, no defence — the containment floor."""

    def test_fuzzer_leaks_across_tenants(self):
        total, _, per_seed = _fuzz_victim_totals("none")
        assert total > 0, (
            f"unmitigated baseline never corrupted the victim across seeds "
            f"{list(SEEDS)} at budget {BUDGET}: {per_seed}; the matrix lost "
            "its positive control"
        )

    def test_targeted_edge_hammer_corrupts_neighbour(self):
        _, hv = _boot("none")
        attacker, victim = _two_tenants(hv)
        a_rows = rows_owned_by_vm(hv, attacker)[0]
        v_rows = rows_owned_by_vm(hv, victim)[0]
        edge = max(a_rows)
        assert min(v_rows) == edge + 1, (
            "shared pool no longer places tenants row-adjacent; "
            f"attacker ends at {edge}, victim starts at {min(v_rows)}"
        )
        hv.machine.dram.activate_batch(0, 0, [edge] * 4000)
        assert _victim_flips(hv, victim), (
            "hammering the boundary row never corrupted the neighbour"
        )


class TestMatrixSiloz:
    """`siloz`: full subarray-group isolation — the containment ceiling."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fuzzer_fully_contained(self, seed):
        mitigation, hv = _boot("siloz", seed=seed)
        attacker, victim = _two_tenants(hv)
        outcome = attack_from_vm(hv, attacker, seed=seed, pattern_budget=BUDGET)
        assert outcome.contained, f"siloz escape at seed {seed}"
        assert not outcome.victim_flips, f"siloz victim flips at seed {seed}"

    def test_tenants_never_row_adjacent(self):
        _, hv = _boot("siloz")
        attacker, victim = _two_tenants(hv)
        a_rows = rows_owned_by_vm(hv, attacker)[0]
        v_rows = rows_owned_by_vm(hv, victim)[0]
        gap = min(v_rows) - max(a_rows)
        assert gap > 2, f"tenant gap {gap} rows is within blast radius"


class TestMatrixPara:
    """`para`: probabilistic refresh — reduces, never guarantees."""

    def test_reduces_but_does_not_eliminate_leaks(self):
        none_total, _, none_seeds = _fuzz_victim_totals("none")
        para_total, _, para_seeds = _fuzz_victim_totals("para")
        assert para_total < none_total, (
            f"PARA ({para_seeds}) did not reduce victim flips vs the "
            f"baseline ({none_seeds})"
        )

    def test_refresh_stream_is_seed_deterministic(self):
        runs = []
        for _ in range(2):
            mitigation, hv = _boot("para", seed=4)
            attacker, _ = _two_tenants(hv)
            outcome = attack_from_vm(hv, attacker, seed=4, pattern_budget=20)
            runs.append(
                (mitigation.refresh_ops(hv), len(hv.machine.dram.flips_log),
                 outcome.summary())
            )
        assert runs[0] == runs[1]
        assert runs[0][0] > 0, "PARA never fired during the campaign"

    def test_high_probability_para_contains_targeted_hammer(self):
        # p=1.0 refreshes both neighbours on every ACT: the classic
        # one-sided hammer can no longer accumulate pressure.
        _, hv = _boot("para", probability=1.0)
        attacker, victim = _two_tenants(hv)
        edge = max(rows_owned_by_vm(hv, attacker)[0])
        hv.machine.dram.activate_batch(0, 0, [edge] * 4000)
        assert not _victim_flips(hv, victim)


class TestMatrixCatt:
    """`catt`: row-aligned partitions — a thin guard is jumpable."""

    def _edge_setup(self, guard_rows: int):
        mitigation, hv = _boot("catt", guard_rows=guard_rows)
        stride = 448 // 8  # partition rows on the small machine
        usable = stride - guard_rows
        attacker = hv.create_vm(
            VmSpec(name="attacker", memory_bytes=usable * 64 * KiB)
        )
        victim = hv.create_vm(VmSpec(name="victim", memory_bytes=1 * MiB))
        return hv, attacker, victim

    def test_single_guard_row_is_jumped_by_distance_two(self):
        hv, attacker, victim = self._edge_setup(guard_rows=1)
        a_rows = rows_owned_by_vm(hv, attacker)[0]
        v_rows = rows_owned_by_vm(hv, victim)[0]
        edge = max(a_rows)
        assert min(v_rows) == edge + 2, (
            f"expected exactly one guard row between partitions; "
            f"attacker ends {edge}, victim starts {min(v_rows)}"
        )
        # Distance-2 coupling is 0.2x: ~7500 ACTs clear the 1500
        # threshold across a single guard row.
        hv.machine.dram.activate_batch(0, 0, [edge] * 9000)
        assert _victim_flips(hv, victim), (
            "CATT's documented single-guard-row hole stopped reproducing"
        )

    def test_two_guard_rows_absorb_the_blast_radius(self):
        hv, attacker, victim = self._edge_setup(guard_rows=2)
        edge = max(rows_owned_by_vm(hv, attacker)[0])
        hv.machine.dram.activate_batch(0, 0, [edge] * 9000)
        assert not _victim_flips(hv, victim), (
            "two guard rows should exceed the distance-2 blast radius"
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_default_partitions_contain_the_fuzzer(self, seed):
        mitigation, hv = _boot("catt", seed=seed)
        attacker, victim = _two_tenants(hv)
        outcome = attack_from_vm(hv, attacker, seed=seed, pattern_budget=BUDGET)
        assert not outcome.victim_flips, f"catt victim flips at seed {seed}"


class TestMatrixGuardRows:
    """`guard-rows`: stripes cap blast reach but tenants share stripes."""

    def test_same_stripe_neighbours_still_corruptible(self):
        _, hv = _boot("guard-rows")
        attacker, victim = _two_tenants(hv)
        a_rows = set(rows_owned_by_vm(hv, attacker)[0])
        v_rows = set(rows_owned_by_vm(hv, victim)[0])
        # Stripes bound blast *reach* but do nothing about placement:
        # the two tenants must still own directly adjacent rows somewhere.
        adjacent = sorted(r for r in a_rows if r + 1 in v_rows or r - 1 in v_rows)
        assert adjacent, (
            "guard-rows placement unexpectedly separated the tenants; "
            f"attacker {sorted(a_rows)}, victim {sorted(v_rows)}"
        )
        hv.machine.dram.activate_batch(0, 0, [adjacent[0]] * 4000)
        assert _victim_flips(hv, victim), (
            "guard stripes' documented same-stripe hole stopped reproducing"
        )

    def test_guard_rows_are_not_allocatable(self):
        mitigation, hv = _boot("guard-rows")
        vms = []
        i = 0
        while True:
            try:
                vms.append(
                    hv.create_vm(VmSpec(name=f"vm{i}", memory_bytes=1 * MiB))
                )
            except Exception:
                break
            i += 1
        geom = hv.machine.geom
        stripe, guard = 32, 1
        guarded = {
            row
            for row in range(geom.rows_per_subarray, geom.rows_per_bank)
            if (row - geom.rows_per_subarray) % stripe >= stripe - guard
        }
        for vm in vms:
            owned = rows_owned_by_vm(hv, vm)
            for rows in owned.values():
                assert not guarded & set(rows), (
                    f"{vm.name} was backed on offlined guard rows"
                )

    def test_capacity_loss_matches_stripe_arithmetic(self):
        mitigation, hv = _boot("guard-rows")
        cap = mitigation.capacity(hv)
        # 448 guest rows, 1 guard per 32-row stripe: 14 rows of 64 KiB.
        assert cap.reserved_bytes == 14 * 64 * KiB
        assert cap.loss_fraction == pytest.approx(14 * 64 * KiB / (32 * MiB))


class TestMatrixDomainBuddy:
    """`domain-buddy`: only as good as its domain-size presumption."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_correct_calibration_contains(self, seed):
        mitigation, hv = _boot("domain-buddy", seed=seed)
        attacker, victim = _two_tenants(hv)
        outcome = attack_from_vm(hv, attacker, seed=seed, pattern_budget=BUDGET)
        assert outcome.contained and not outcome.victim_flips, (
            f"calibrated domain-buddy leaked at seed {seed}"
        )

    def test_miscalibrated_domains_leak_group_escapes(self):
        # Presuming 32-row subarrays on 64-row hardware places tenant
        # boundaries mid-subarray: a tenant filling its whole presumed
        # domain hammers straight across the edge, so escapes out of the
        # presumed domain must reproduce across the sweep.
        escaped = 0
        for seed in range(10):
            mitigation, hv = _boot(
                "domain-buddy", seed=seed, rows_per_subarray=32
            )
            attacker, victim = _two_tenants(hv, size=2 * MiB)
            outcome = attack_from_vm(
                hv, attacker, seed=seed, pattern_budget=40
            )
            escaped += len(outcome.flips_escaped)
        assert escaped > 0, (
            "the documented miscalibration hole stopped reproducing"
        )

    def test_zero_capacity_loss(self):
        mitigation, hv = _boot("domain-buddy")
        assert mitigation.capacity(hv).loss_fraction == 0.0


class TestBakeoffHarness:
    SMALL = dict(
        mitigations=("none", "siloz"), hosts=2, vms=4, seed=3, budget=4
    )

    def test_digest_worker_count_independent(self):
        one = run_bakeoff(BakeoffConfig(**self.SMALL, workers=1))
        two = run_bakeoff(BakeoffConfig(**self.SMALL, workers=2))
        assert one.digest() == two.digest()

    def test_digest_backend_independent(self):
        scalar = run_bakeoff(BakeoffConfig(**self.SMALL, backend="scalar"))
        batched = run_bakeoff(BakeoffConfig(**self.SMALL, backend="batched"))
        vector = run_bakeoff(BakeoffConfig(**self.SMALL, backend="vectorized"))
        assert scalar.digest() == batched.digest() == vector.digest()
        for name in self.SMALL["mitigations"]:
            assert scalar.mitigation_digest(name) == vector.mitigation_digest(
                name
            )

    def test_entries_and_table(self):
        report = run_bakeoff(BakeoffConfig(**self.SMALL))
        assert [e["mitigation"] for e in report.entries] == ["none", "siloz"]
        assert report.clean
        siloz = report.entry("siloz")
        assert siloz["capacity"]["loss_fraction"] == pytest.approx(0.0625)
        assert not siloz["shared_domains"]
        assert report.entry("none")["shared_domains"]
        table = report.render_table()
        assert "siloz" in table and "none" in table
        assert "loss %" in table
        with pytest.raises(MitigationError):
            report.entry("para")

    def test_headline_result_reproduces_in_fleet(self):
        # Seed 7 at the full budget: the baseline corrupts a victim VM,
        # Siloz contains — the bench and README table's headline row.
        report = run_bakeoff(
            BakeoffConfig(
                mitigations=("none", "siloz"),
                hosts=2,
                vms=4,
                seed=7,
                budget=BUDGET,
                backend="vectorized",
            )
        )
        none_c = report.entry("none")["containment"]
        siloz_c = report.entry("siloz")["containment"]
        assert none_c["victim_flips"] > 0
        assert none_c["containment_rate"] < 1.0
        assert siloz_c["victim_flips"] == 0
        assert siloz_c["containment_rate"] == 1.0

    def test_resolved_mitigations_validation(self):
        with pytest.raises(MitigationError, match="unknown"):
            BakeoffConfig(mitigations=("nope",)).resolved_mitigations()
        with pytest.raises(MitigationError, match="duplicate"):
            BakeoffConfig(mitigations=("siloz", "siloz")).resolved_mitigations()
        assert BakeoffConfig().resolved_mitigations() == tuple(
            sorted(BakeoffConfig().resolved_mitigations())
        )

    def test_report_roundtrip_shape(self):
        report = run_bakeoff(BakeoffConfig(**self.SMALL))
        doc = report.to_json()
        assert doc["config"]["mitigations"] == ["none", "siloz"]
        rebuilt = BakeoffReport(config=doc["config"], entries=doc["entries"])
        assert rebuilt.digest() == report.digest()


class TestBakeoffObservability:
    def test_events_fold_into_metrics(self):
        from repro import obs

        obs.enable(reset=True)
        try:
            run_bakeoff(
                BakeoffConfig(
                    mitigations=("none", "siloz"), hosts=2, vms=4, budget=2
                )
            )
            snap = obs.metrics_snapshot()
            events = [
                e for e in obs.tracer().events() if e.kind == "bakeoff"
            ]
        finally:
            obs.disable(reset=True)
        assert snap["counters"]["bakeoff.campaigns"] == 2
        assert snap["gauges"]["bakeoff.siloz.loss_fraction"] == 0.0625
        assert "bakeoff.none.containment_rate" in snap["gauges"]
        assert [e.mitigation for e in events] == ["none", "siloz"]

    def test_bakeoff_event_roundtrips_jsonl(self):
        from repro.obs.events import BakeoffEvent, event_from_payload

        event = BakeoffEvent(
            mitigation="siloz", containment_rate=1.0, victim_flips=0
        )
        rebuilt = event_from_payload("bakeoff", event.to_payload())
        assert rebuilt == event


class TestBakeoffCli:
    def test_cli_runs_and_prints_digest(self, capsys):
        from repro.cli import main

        code = main(
            [
                "--seed", "3", "bakeoff", "--mitigations", "none,siloz",
                "--hosts", "2", "--vms", "4", "--budget", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "bakeoff digest: " in out
        assert "siloz" in out

    def test_cli_rejects_unknown_mitigation(self, capsys):
        from repro.cli import main

        code = main(["bakeoff", "--mitigations", "nope"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown mitigation" in err

    def test_fleet_accepts_mitigation_flag(self, capsys):
        from repro.cli import main

        code = main(
            [
                "fleet", "--mitigation", "none", "--hosts", "2", "--vms", "4",
                "--budget", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "merge digest" in out

    def test_fleet_rejects_unknown_mitigation(self, capsys):
        from repro.cli import main

        code = main(["fleet", "--mitigation", "nope", "--hosts", "2"])
        assert code == 2
        assert "mitigation" in capsys.readouterr().err
