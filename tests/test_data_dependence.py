"""Tests for the opt-in true-/anti-cell (data-dependent) flip model.

Real Rowhammer flips are directional: a disturbance discharges a cell,
so only cells storing their *charged* value can flip, and the flipped
value is stable (no toggling back).  Blacksmith sweeps data patterns for
exactly this reason.
"""

import pytest

from repro.dram.disturbance import DisturbanceProfile
from repro.dram.geometry import DRAMGeometry
from repro.dram.module import SimulatedDram

GEOM = DRAMGeometry.small()


def make_dram(data_dependent=True, seed=5):
    return SimulatedDram(
        GEOM,
        profile=DisturbanceProfile.test_scale(threshold_mean=32.0),
        trr_config=None,
        seed=seed,
        data_dependent_flips=data_dependent,
    )


def hammer(dram, row=3, count=2000):
    for _ in range(count):
        dram.activate(0, 0, row)


class TestPolarity:
    def test_resting_value_deterministic(self):
        a = SimulatedDram._resting_value(0, 1, 5, 100)
        b = SimulatedDram._resting_value(0, 1, 5, 100)
        assert a == b and a in (0, 1)

    def test_polarities_mixed(self):
        values = {
            SimulatedDram._resting_value(0, 0, 2, bit) for bit in range(64)
        }
        assert values == {0, 1}


class TestDataDependentFlips:
    def test_some_flips_suppressed(self):
        dram = make_dram()
        hammer(dram)
        assert dram.flips_log  # charged cells still flip
        assert dram.flips_suppressed > 0  # resting cells do not

    def test_flipped_bits_land_at_rest(self):
        dram = make_dram()
        hammer(dram)
        for flip in dram.flips_log:
            resting = SimulatedDram._resting_value(
                flip.socket, flip.bank, flip.row, flip.bit
            )
            assert (
                dram._effective_bit(flip.socket, flip.bank, flip.row, flip.bit)
                == resting
            )

    def test_no_toggling_back(self):
        """Once at rest, further hammering cannot flip the bit again."""
        dram = make_dram()
        hammer(dram, count=4000)
        seen = {}
        for flip in dram.flips_log:
            key = (flip.socket, flip.bank, flip.row, flip.bit)
            seen[key] = seen.get(key, 0) + 1
        assert all(count == 1 for count in seen.values())

    def test_data_pattern_changes_victims(self):
        """The Blacksmith insight: different victim data, different
        flippable cells."""
        from repro.dram.media import MediaAddress

        results = []
        for pattern in (b"\x00", b"\xff"):
            dram = make_dram(seed=6)
            # Fill victim rows 2 and 4 with the pattern.
            for row in (2, 4):
                media = MediaAddress.from_socket_bank(GEOM, 0, 0, row, 0)
                dram.write(dram.mapping.encode(media), pattern * 64)
            hammer(dram, row=3, count=3000)
            results.append({(f.row, f.bit) for f in dram.flips_log})
        assert results[0] != results[1]

    def test_default_model_toggles(self):
        """Without the option, flips toggle (the polarity-agnostic
        default used by the containment experiments)."""
        dram = make_dram(data_dependent=False)
        hammer(dram, count=4000)
        assert dram.flips_suppressed == 0

    def test_containment_unaffected(self):
        """Polarity changes which bits flip, never *where*: subarray
        clipping holds identically."""
        dram = make_dram()
        hammer(dram, row=7, count=4000)
        assert dram.flips_log
        assert all(f.row < 8 for f in dram.flips_log)
