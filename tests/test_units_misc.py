"""Coverage sweep: units helpers, error hierarchy, and small surfaces
not exercised elsewhere."""

import pytest

from repro import __version__
from repro.dram.geometry import DRAMGeometry
from repro.errors import (
    AddressError,
    AttackError,
    CgroupError,
    DramError,
    EptError,
    EptIntegrityError,
    EptViolation,
    GeometryError,
    HvError,
    IsolationViolation,
    MappingError,
    MemCtrlError,
    MmError,
    OfflineError,
    OutOfMemoryError,
    PlacementError,
    ReproError,
    UncorrectableError,
    WorkloadError,
)
from repro.hv.machine import Machine
from repro.units import (
    CACHE_LINE,
    GiB,
    KiB,
    MiB,
    PAGE_2M,
    PAGE_4K,
    TiB,
    align_down,
    align_up,
    fmt_bytes,
    is_aligned,
    is_power_of_two,
)


class TestUnits:
    def test_constants_consistent(self):
        assert MiB == 1024 * KiB
        assert GiB == 1024 * MiB
        assert TiB == 1024 * GiB
        assert PAGE_2M == 512 * PAGE_4K
        assert CACHE_LINE == 64

    def test_align_down_up(self):
        assert align_down(4097, 4096) == 4096
        assert align_up(4097, 4096) == 8192
        assert align_up(4096, 4096) == 4096
        assert align_down(0, 4096) == 0

    def test_align_rejects_bad_alignment(self):
        with pytest.raises(ValueError):
            align_down(10, 0)
        with pytest.raises(ValueError):
            align_up(10, -1)
        with pytest.raises(ValueError):
            is_aligned(10, 0)

    def test_is_aligned(self):
        assert is_aligned(8192, 4096)
        assert not is_aligned(8191, 4096)

    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(1024)
        assert not is_power_of_two(0)
        assert not is_power_of_two(3)
        assert not is_power_of_two(-4)

    @pytest.mark.parametrize(
        "n,expected",
        [
            (0, "0 B"),
            (512, "512 B"),
            (KiB, "1 KiB"),
            (1536 * MiB, "1.5 GiB"),
            (384 * GiB, "384 GiB"),
            (2 * TiB, "2 TiB"),
            (-KiB, "-1 KiB"),
        ],
    )
    def test_fmt_bytes(self, n, expected):
        assert fmt_bytes(n) == expected


class TestErrorHierarchy:
    def test_everything_is_a_repro_error(self):
        for exc in (
            GeometryError,
            AddressError,
            MappingError,
            DramError,
            UncorrectableError,
            MemCtrlError,
            MmError,
            OutOfMemoryError,
            CgroupError,
            OfflineError,
            EptError,
            EptIntegrityError,
            EptViolation,
            HvError,
            PlacementError,
            IsolationViolation,
            AttackError,
            WorkloadError,
        ):
            assert issubclass(exc, ReproError)

    def test_specific_parentage(self):
        assert issubclass(MappingError, AddressError)
        assert issubclass(UncorrectableError, DramError)
        assert issubclass(OutOfMemoryError, MmError)
        assert issubclass(EptIntegrityError, EptError)
        assert issubclass(PlacementError, HvError)

    def test_uncorrectable_carries_address(self):
        err = UncorrectableError("bad", address=0x1234)
        assert err.address == 0x1234
        assert UncorrectableError("bad").address is None


class TestVersionAndMachines:
    def test_version_string(self):
        assert __version__.count(".") == 2

    def test_paper_machine_shape(self):
        machine = Machine.paper()
        assert machine.total_cores == 80
        assert machine.socket_cores(1) == tuple(range(40, 80))
        assert machine.geom.total_bytes == 384 * GiB

    def test_medium_machine_shape(self):
        machine = Machine.medium()
        assert machine.geom.banks_per_socket == 32
        assert machine.geom.socket_bytes == 256 * MiB

    def test_socket_cores_bounds(self):
        with pytest.raises(GeometryError):
            Machine.small().socket_cores(5)


class TestGeometryDescribe:
    def test_variants_describe(self):
        for geom in (
            DRAMGeometry.paper_default(),
            DRAMGeometry.medium(),
            DRAMGeometry.ddr5_server(),
            DRAMGeometry.hbm2_stack(),
        ):
            text = geom.describe()
            assert "subarray" in text and "capacity" in text
