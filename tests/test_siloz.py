"""Integration tests for the Siloz hypervisor (paper §5)."""

import pytest

from repro.core import (
    EptProtection,
    SilozConfig,
    SilozHypervisor,
    audit_hypervisor,
    flips_escaping_vm,
)
from repro.core.groups import ept_block_rows, ept_row
from repro.dram.geometry import DRAMGeometry
from repro.errors import CgroupError, PlacementError
from repro.hv import BaselineHypervisor, Machine, VmSpec
from repro.mm.numa import NodeKind
from repro.mm.offline import OfflineReason
from repro.units import GiB, KiB, MiB


def small_siloz(sockets=1, **kwargs):
    machine = Machine.small(sockets=sockets, **kwargs)
    return SilozHypervisor.boot(machine)


def spec(name="vm0", mem=2 * MiB, **kwargs):
    return VmSpec(name=name, memory_bytes=mem, **kwargs)


class TestConfig:
    def test_paper_default(self):
        cfg = SilozConfig.paper_default()
        assert cfg.ept_block_row_groups == 32
        assert cfg.ept_row_group_offset == 12

    def test_paper_reserved_fraction(self):
        """§5.4: b=32 reserves ~0.024 % of each 1 GiB bank."""
        cfg = SilozConfig.paper_default()
        frac = cfg.reserved_fraction(DRAMGeometry.paper_default())
        assert frac == pytest.approx(0.000244, rel=0.01)

    def test_guard_margins_enforced(self):
        with pytest.raises(PlacementError):
            SilozConfig(ept_block_row_groups=32, ept_row_group_offset=2)
        with pytest.raises(PlacementError):
            SilozConfig(ept_block_row_groups=32, ept_row_group_offset=30)

    def test_offset_within_block(self):
        with pytest.raises(PlacementError):
            SilozConfig(ept_block_row_groups=8, ept_row_group_offset=8)

    def test_scaled_for_small_geometry(self):
        geom = DRAMGeometry.small(rows_per_bank=512, rows_per_subarray=64)
        cfg = SilozConfig.scaled_for(geom)
        assert cfg.ept_block_row_groups <= 64
        assert cfg.ept_row_group_offset >= cfg.blast_radius
        cfg.validate_against(geom)

    def test_block_must_fit_subarray(self):
        geom = DRAMGeometry.small()  # 8-row subarrays
        with pytest.raises(PlacementError):
            SilozConfig.paper_default().validate_against(geom)

    def test_presumed_subarray_size_variants(self):
        geom = DRAMGeometry.paper_default()
        for rows in (512, 1024, 2048):
            cfg = SilozConfig(rows_per_subarray=rows)
            assert cfg.effective_geometry(geom).rows_per_subarray == rows

    def test_presumed_size_must_divide(self):
        geom = DRAMGeometry.paper_default()
        with pytest.raises(PlacementError):
            SilozConfig(rows_per_subarray=1000).validate_against(geom)


class TestBootTopology:
    def setup_method(self):
        self.hv = small_siloz()
        self.geom = self.hv.machine.geom

    def test_node_counts(self):
        """One host + (G-1) guest + 1 EPT node per socket (§5.2)."""
        groups = self.geom.groups_per_socket
        assert len(self.hv.topology.nodes_of_kind(NodeKind.HOST_RESERVED)) == 1
        assert (
            len(self.hv.topology.nodes_of_kind(NodeKind.GUEST_RESERVED))
            == groups - 1
        )
        assert len(self.hv.topology.nodes_of_kind(NodeKind.EPT_RESERVED)) == 1

    def test_guest_nodes_memory_only(self):
        for node in self.hv.topology.nodes_of_kind(NodeKind.GUEST_RESERVED):
            assert node.is_memory_only

    def test_host_node_owns_cores(self):
        host = self.hv.topology.node(0)
        assert host.cpus == self.hv.machine.socket_cores(0)

    def test_logical_nodes_remember_physical(self):
        for node in self.hv.topology.nodes:
            assert node.physical_node == 0

    def test_guard_rows_offlined(self):
        cfg = self.hv.config
        expected = cfg.guard_row_groups * self.geom.row_group_bytes
        assert self.hv.offline.total_bytes(OfflineReason.GUARD_ROW) == expected

    def test_each_group_is_exactly_one_node(self):
        seen = {}
        for node in self.hv.topology.nodes:
            if node.kind is NodeKind.EPT_RESERVED:
                continue
            for g in node.subarray_groups:
                assert g not in seen, "group on two nodes"
                seen[g] = node.node_id
        assert set(seen) == set(range(self.geom.groups_per_socket))

    def test_memory_is_fully_accounted(self):
        """nodes + offlined guards == socket capacity, no leaks."""
        total = sum(n.total_bytes for n in self.hv.topology.nodes)
        offlined = 0  # guards are inside host node totals, not extra
        assert total == self.geom.socket_bytes

    def test_ept_block_inside_host_groups_first_subarray(self):
        rows = list(ept_block_rows(self.hv.config, self.geom))
        subarrays = {self.geom.subarray_of_row(r) for r in rows}
        assert len(subarrays) == 1
        assert ept_row(self.hv.config, self.geom) in rows

    def test_describe_mentions_protection(self):
        assert "guard-rows" in self.hv.describe()

    def test_two_socket_topology(self):
        hv = small_siloz(sockets=2)
        assert len(hv.topology.nodes_of_kind(NodeKind.HOST_RESERVED)) == 2
        assert len(hv.topology.nodes_of_kind(NodeKind.EPT_RESERVED)) == 2
        # Host node ids mirror the baseline (0, 1).
        assert hv.topology.node(0).kind is NodeKind.HOST_RESERVED
        assert hv.topology.node(1).kind is NodeKind.HOST_RESERVED


class TestPlacement:
    def setup_method(self):
        self.hv = small_siloz()

    def test_vm_gets_private_guest_nodes(self):
        vm = self.hv.create_vm(spec())
        for nid in vm.node_ids:
            assert self.hv.topology.node(nid).kind is NodeKind.GUEST_RESERVED

    def test_vm_backing_within_reserved_groups(self):
        vm = self.hv.create_vm(spec())
        assert self.hv.groups_of_vm(vm) <= set(vm.reserved_groups)

    def test_two_vms_disjoint_groups(self):
        a = self.hv.create_vm(spec("a"))
        b = self.hv.create_vm(spec("b"))
        assert not (set(a.reserved_groups) & set(b.reserved_groups))
        assert not (self.hv.groups_of_vm(a) & self.hv.groups_of_vm(b))

    def test_audit_clean(self):
        self.hv.create_vm(spec("a"))
        self.hv.create_vm(spec("b"))
        assert audit_hypervisor(self.hv) == []

    def test_audit_flags_baseline(self):
        hv = BaselineHypervisor(Machine.small(), backing_page_bytes=64 * KiB)
        hv.create_vm(spec("a", mem=256 * KiB))
        hv.create_vm(spec("b", mem=256 * KiB))
        violations = audit_hypervisor(hv)
        assert any(v.kind == "co-location" for v in violations)

    def test_large_vm_gets_multiple_nodes(self):
        group = self.hv.machine.geom.subarray_group_bytes
        vm = self.hv.create_vm(spec(mem=2 * group - 2 * MiB))
        assert len(vm.node_ids) >= 2
        assert audit_hypervisor(self.hv) == []

    def test_placement_exhaustion(self):
        group = self.hv.machine.geom.subarray_group_bytes
        guests = len(self.hv.topology.nodes_of_kind(NodeKind.GUEST_RESERVED))
        # Fill every guest node, then one more VM must fail.
        for i in range(guests):
            self.hv.create_vm(spec(f"vm{i}", mem=group - 2 * MiB))
        with pytest.raises(PlacementError):
            self.hv.create_vm(spec("extra", mem=group - 2 * MiB))

    def test_nodes_not_reused_while_reserved(self):
        vm = self.hv.create_vm(spec("a"))
        self.hv.destroy_vm("a")  # shutdown but reservation kept (§5.3)
        b = self.hv.create_vm(spec("b", mem=2 * MiB))
        assert not (set(vm.node_ids) & set(b.node_ids))

    def test_nodes_reusable_after_release(self):
        vm = self.hv.create_vm(spec("a"))
        nodes_a = set(vm.node_ids)
        self.hv.destroy_vm("a")
        self.hv.release_reservation("a")
        b = self.hv.create_vm(spec("b"))
        assert set(b.node_ids) & nodes_a  # lowest nodes get reused

    def test_mediated_pages_on_host_node(self):
        vm = self.hv.create_vm(spec())
        for r in vm.mediated_backing:
            node = self.hv.topology.node_of_addr(r.start)
            assert node.kind is NodeKind.HOST_RESERVED

    def test_unprivileged_process_cannot_take_guest_nodes(self):
        from repro.mm.cgroup import Process

        rogue = Process(pid=1, name="rogue", kvm_privileged=False)
        guest = self.hv.topology.nodes_of_kind(NodeKind.GUEST_RESERVED)[0]
        with pytest.raises(CgroupError):
            self.hv.cgroups.check_allocation(
                rogue, guest.node_id, node_is_guest_reserved=True
            )

    def test_same_socket_preferred(self):
        hv = small_siloz(sockets=2)
        vm = hv.create_vm(spec(socket=1))
        for nid in vm.node_ids:
            assert hv.topology.node(nid).physical_node == 1


class TestEptPlacement:
    def test_ept_pages_in_ept_node(self):
        hv = small_siloz()
        vm = hv.create_vm(spec())
        ept_node = hv.topology.node(hv.provision_result.ept_node_of_socket[0])
        for page in vm.ept.table_pages:
            assert any(page in r for r in ept_node.ranges)

    def test_ept_row_group_is_correct_row(self):
        from repro.core.groups import ept_rows

        hv = small_siloz()
        rows = ept_rows(hv.config, hv.machine.geom)
        vm = hv.create_vm(spec())
        for page in vm.ept.table_pages:
            media = hv.machine.mapping.decode(page)
            assert media.row in rows

    def test_baseline_ept_pages_anywhere(self):
        hv = BaselineHypervisor(Machine.small(), backing_page_bytes=64 * KiB)
        vm = hv.create_vm(spec())
        # kmalloc'd from the general pool: same node as everything else.
        assert all(hv.topology.node_of_addr(p).node_id == 0 for p in vm.ept.table_pages)

    def test_secure_ept_mode_has_no_ept_node(self):
        machine = Machine.small()
        cfg = SilozConfig.scaled_for(
            machine.geom, ept_protection=EptProtection.SECURE_EPT
        )
        hv = SilozHypervisor.boot(machine, cfg)
        assert hv.topology.nodes_of_kind(NodeKind.EPT_RESERVED) == []
        assert hv.offline.total_bytes(OfflineReason.GUARD_ROW) == 0

    def test_secure_ept_vm_walks_with_checker(self):
        machine = Machine.small()
        cfg = SilozConfig.scaled_for(
            machine.geom, ept_protection=EptProtection.SECURE_EPT
        )
        hv = SilozHypervisor.boot(machine, cfg)
        vm = hv.create_vm(spec())
        assert vm.ept.checker is not None
        vm.write(0x1000, b"ok")  # translations verify cleanly
        assert vm.read(0x1000, 2) == b"ok"
        assert vm.ept.checker.checks > 0


class TestFlipAccounting:
    def test_flips_escaping_vm_empty_without_attack(self):
        hv = small_siloz()
        vm = hv.create_vm(spec())
        assert flips_escaping_vm(hv, vm) == []
