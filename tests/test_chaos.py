"""Tests for ``repro.chaos``: plans, supervised execution, checkpoint
journals, the isolation auditor, and chaos campaigns end to end."""

import json
import os
import time
from dataclasses import dataclass

import pytest

from repro import obs
from repro.chaos import (
    CampaignJournal,
    CampaignSupervisor,
    ChaosKind,
    ChaosPlan,
    ChaosSpec,
    IsolationAuditor,
    SupervisorPolicy,
    WorkerDeathError,
    config_digest,
)
from repro.errors import ChaosError
from repro.fleet import (
    CampaignConfig,
    Fleet,
    FleetCampaign,
    HostTask,
    MigrationError,
    evacuate_host,
    make_scheduler,
    migrate_vm,
    run_host_task,
)
from repro.fleet.report import _config_dict
from repro.hv import VmSpec
from repro.units import MiB


# ---------------------------------------------------------------------------
# Chaos plans
# ---------------------------------------------------------------------------


class TestChaosPlan:
    def test_generate_is_deterministic(self):
        a = ChaosPlan.generate(7, 4, events=6, arrivals=10)
        b = ChaosPlan.generate(7, 4, events=6, arrivals=10)
        assert a.to_dict() == b.to_dict()
        assert ChaosPlan.generate(8, 4, events=6).to_dict() != a.to_dict()

    def test_round_trip(self):
        plan = ChaosPlan.generate(3, 4, events=6)
        again = ChaosPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert again.to_dict() == plan.to_dict()
        assert again.describe() == plan.describe()

    def test_specs_are_time_ordered(self):
        plan = ChaosPlan.generate(11, 8, events=8)
        clocks = [s.at_clock for s in plan.specs]
        assert clocks == sorted(clocks)

    def test_at_most_one_event_per_kind_and_host(self):
        plan = ChaosPlan.generate(5, 2, events=40)
        pairs = [(s.kind, s.host_id) for s in plan.specs]
        assert len(pairs) == len(set(pairs))

    def test_for_host_returns_only_shard_kinds(self):
        plan = ChaosPlan(
            specs=[
                ChaosSpec(kind=ChaosKind.HOST_CRASH, host_id=1, at_clock=0.2),
                ChaosSpec(kind=ChaosKind.WORKER_DEATH, host_id=1, at_clock=0.1),
                ChaosSpec(kind=ChaosKind.DIGEST_CORRUPTION, host_id=1),
                ChaosSpec(kind=ChaosKind.UE_STORM, host_id=2, ue_errors=2),
            ]
        )
        kinds = [s.kind for s in plan.for_host(1)]
        assert kinds == [ChaosKind.WORKER_DEATH, ChaosKind.HOST_CRASH]
        assert plan.for_host(0) == ()

    def test_stalls_sorted_by_arrival(self):
        plan = ChaosPlan(
            specs=[
                ChaosSpec(
                    kind=ChaosKind.QUEUE_STALL, host_id=-1, at_clock=0.01,
                    arrival_index=9, stall_s=0.001, stall_width=1,
                ),
                ChaosSpec(
                    kind=ChaosKind.QUEUE_STALL, host_id=-1, at_clock=0.02,
                    arrival_index=2, stall_s=0.001, stall_width=1,
                ),
            ]
        )
        assert [s.arrival_index for s in plan.stalls()] == [2, 9]

    def test_generated_corruption_rides_with_a_crash(self):
        # Sweep seeds: wherever a corruption is planned, the same host
        # must also crash — corruption only bites during evacuation.
        for seed in range(30):
            plan = ChaosPlan.generate(seed, 4, events=8)
            for spec in plan.specs:
                if spec.kind is ChaosKind.DIGEST_CORRUPTION:
                    assert any(
                        s.kind is ChaosKind.HOST_CRASH
                        and s.host_id == spec.host_id
                        for s in plan.specs
                    ), f"seed {seed}: lone corruption on host {spec.host_id}"

    def test_corruption_for(self):
        plan = ChaosPlan(
            specs=[
                ChaosSpec(
                    kind=ChaosKind.DIGEST_CORRUPTION, host_id=3, flip_offset=99
                )
            ]
        )
        assert plan.corruption_for(3).flip_offset == 99
        assert plan.corruption_for(1) is None

    def test_spec_validation(self):
        with pytest.raises(ChaosError):
            ChaosSpec(kind=ChaosKind.QUEUE_STALL, host_id=0, stall_s=1, stall_width=1)
        with pytest.raises(ChaosError):
            ChaosSpec(kind=ChaosKind.QUEUE_STALL, host_id=-1, stall_s=0, stall_width=1)
        with pytest.raises(ChaosError):
            ChaosSpec(kind=ChaosKind.WORKER_DEATH, host_id=0, kills=0)
        with pytest.raises(ChaosError):
            ChaosSpec(kind=ChaosKind.UE_STORM, host_id=0, ue_errors=0)
        with pytest.raises(ChaosError):
            ChaosSpec(kind=ChaosKind.HOST_CRASH, host_id=-1)
        with pytest.raises(ChaosError):
            ChaosSpec(kind=ChaosKind.HOST_CRASH, host_id=0, at_clock=-1.0)

    def test_generate_validation(self):
        with pytest.raises(ChaosError):
            ChaosPlan.generate(0, 0)
        with pytest.raises(ChaosError):
            ChaosPlan.generate(0, 2, events=-1)
        with pytest.raises(ChaosError):
            ChaosPlan.generate(0, 2, kinds=())


# ---------------------------------------------------------------------------
# Supervisor (mini harness: module-level + picklable for fork workers)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _MiniSpec:
    host_id: int


@dataclass(frozen=True)
class _MiniVm:
    name: str


@dataclass(frozen=True)
class _MiniTask:
    spec: _MiniSpec
    vm_specs: tuple = ()
    #: Attempts that raise WorkerDeathError (os._exit(70) in a worker).
    die_attempts: int = 0
    #: Attempts that call os._exit mid-shard — a raw, unplanned worker
    #: kill with no exception and no result (parallel path only).
    hard_exit_attempts: int = 0
    #: Attempts that hang past any reasonable task timeout.
    hang_attempts: int = 0
    #: Attempts that raise an unexpected exception (shim crash-exit).
    crash_attempts: int = 0


def _mini_run(task: _MiniTask, attempt: int = 1) -> dict:
    if attempt <= task.hard_exit_attempts:
        os._exit(3)
    if attempt <= task.die_attempts:
        raise WorkerDeathError(f"planned death on attempt {attempt}")
    if attempt <= task.crash_attempts:
        raise RuntimeError("unexpected shard bug")
    if attempt <= task.hang_attempts:
        time.sleep(60.0)
    return {"host_id": task.spec.host_id, "ok": True, "attempt": attempt}


def _fast_policy(**kw) -> SupervisorPolicy:
    defaults = dict(task_timeout_s=30.0, max_attempts=3, backoff_s=0.0)
    defaults.update(kw)
    return SupervisorPolicy(**defaults)


class TestSupervisorSerial:
    def test_plain_success(self):
        sup = CampaignSupervisor(_mini_run, policy=_fast_policy())
        results, report = sup.run([_MiniTask(_MiniSpec(0))], workers=1)
        assert results == [{"host_id": 0, "ok": True, "attempt": 1}]
        assert report.retried == 0 and report.worker_deaths == 0

    def test_worker_death_is_retried(self):
        sup = CampaignSupervisor(_mini_run, policy=_fast_policy())
        results, report = sup.run(
            [_MiniTask(_MiniSpec(4), die_attempts=1)], workers=1
        )
        assert results[0]["ok"] and results[0]["attempt"] == 2
        assert report.retried == 1 and report.worker_deaths == 1
        assert report.outcomes[0].attempts == 2

    def test_gives_up_after_max_attempts(self):
        sup = CampaignSupervisor(
            _mini_run, policy=_fast_policy(max_attempts=2)
        )
        task = _MiniTask(_MiniSpec(1), (_MiniVm("vm-a"),), die_attempts=99)
        results, report = sup.run([task], workers=1)
        assert results[0]["ok"] is False and results[0]["gave_up"]
        assert results[0]["vms"] == ["vm-a"]
        assert report.outcomes[0].gave_up
        assert report.worker_deaths == 2

    def test_on_result_sees_each_completion(self):
        seen = []
        sup = CampaignSupervisor(_mini_run, policy=_fast_policy())
        tasks = [_MiniTask(_MiniSpec(i)) for i in range(3)]
        results, _ = sup.run(tasks, workers=1, on_result=seen.append)
        assert seen == results

    def test_policy_validation(self):
        with pytest.raises(ChaosError):
            SupervisorPolicy(task_timeout_s=0)
        with pytest.raises(ChaosError):
            SupervisorPolicy(max_attempts=0)
        with pytest.raises(ChaosError):
            SupervisorPolicy(backoff_s=-1)


class TestSupervisorParallel:
    """Real processes, real deaths: the pool.map replacement under fire."""

    def test_results_keep_task_order(self):
        sup = CampaignSupervisor(_mini_run, policy=_fast_policy())
        tasks = [_MiniTask(_MiniSpec(i)) for i in (3, 0, 2, 1)]
        results, _ = sup.run(tasks, workers=2)
        assert [r["host_id"] for r in results] == [3, 0, 2, 1]

    def test_raw_mid_shard_kill_is_requeued_not_fatal(self):
        # The regression the supervisor exists for: a worker that dies
        # mid-shard (os._exit, no exception, no result) used to poison
        # pool.map and kill the whole campaign.
        sup = CampaignSupervisor(_mini_run, policy=_fast_policy())
        tasks = [
            _MiniTask(_MiniSpec(0), hard_exit_attempts=1),
            _MiniTask(_MiniSpec(1)),
        ]
        results, report = sup.run(tasks, workers=2)
        assert [r["host_id"] for r in results] == [0, 1]
        assert results[0]["ok"] and results[0]["attempt"] == 2
        assert results[1]["ok"] and results[1]["attempt"] == 1
        assert report.worker_deaths == 1 and report.retried == 1

    def test_planned_death_exits_the_process_for_real(self):
        sup = CampaignSupervisor(_mini_run, policy=_fast_policy())
        results, report = sup.run(
            [
                _MiniTask(_MiniSpec(0), die_attempts=1),
                _MiniTask(_MiniSpec(1), die_attempts=2),
            ],
            workers=2,
        )
        assert results[0]["attempt"] == 2
        assert results[1]["attempt"] == 3
        assert report.worker_deaths == 3

    def test_crash_in_shard_is_retried(self):
        # len(tasks) <= 1 falls back to serial; force parallel with two.
        sup = CampaignSupervisor(_mini_run, policy=_fast_policy())
        results, report = sup.run(
            [_MiniTask(_MiniSpec(0), crash_attempts=1), _MiniTask(_MiniSpec(1))],
            workers=2,
        )
        assert results[0]["ok"] and results[0]["attempt"] == 2
        assert report.worker_deaths == 1

    def test_hung_shard_times_out_and_retries(self):
        sup = CampaignSupervisor(
            _mini_run, policy=_fast_policy(task_timeout_s=0.5)
        )
        tasks = [
            _MiniTask(_MiniSpec(0), hang_attempts=1),
            _MiniTask(_MiniSpec(1)),
        ]
        results, report = sup.run(tasks, workers=2)
        assert results[0]["ok"] and results[0]["attempt"] == 2
        assert report.timeouts == 1
        assert report.outcomes[0].timeouts == 1

    def test_gives_up_in_parallel_too(self):
        sup = CampaignSupervisor(
            _mini_run, policy=_fast_policy(max_attempts=2)
        )
        tasks = [
            _MiniTask(_MiniSpec(0), hard_exit_attempts=99),
            _MiniTask(_MiniSpec(1)),
        ]
        results, report = sup.run(tasks, workers=2)
        assert results[0]["gave_up"] and results[1]["ok"]
        assert report.outcomes[0].gave_up


# ---------------------------------------------------------------------------
# Checkpoint journal
# ---------------------------------------------------------------------------


class TestJournal:
    def _open(self, path, digest="d" * 64):
        journal = CampaignJournal(path)
        journal.open(digest)
        return journal

    def test_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = self._open(path)
        journal.record({"host_id": 0, "ok": True, "seed": 5})
        journal.record({"host_id": 2, "ok": False, "seed": 9})
        journal.close()
        loaded = CampaignJournal.load(path, "d" * 64)
        assert set(loaded) == {0, 2}
        assert loaded[0] == {"host_id": 0, "ok": True, "seed": 5}

    def test_truncated_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = self._open(path)
        journal.record({"host_id": 0, "ok": True})
        journal.close()
        with open(path, "a") as fh:
            fh.write('{"shard": 1, "result": {"host_id"')  # mid-write kill
        loaded = CampaignJournal.load(path)
        assert set(loaded) == {0}

    def test_later_checkpoint_wins(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = self._open(path)
        journal.record({"host_id": 0, "ok": False, "attempt": 1})
        journal.record({"host_id": 0, "ok": True, "attempt": 2})
        journal.close()
        assert CampaignJournal.load(path)[0]["ok"] is True

    def test_config_digest_mismatch_refuses_resume(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._open(path, "a" * 64).close()
        with pytest.raises(ChaosError, match="different campaign"):
            CampaignJournal.load(path, "b" * 64)
        with pytest.raises(ChaosError, match="different campaign"):
            CampaignJournal(path).open("b" * 64)

    def test_not_a_journal(self, tmp_path):
        path = tmp_path / "nope.jsonl"
        path.write_text('{"some": "json"}\n')
        with pytest.raises(ChaosError, match="not a campaign journal"):
            CampaignJournal.load(path)
        with pytest.raises(ChaosError):
            CampaignJournal.load(tmp_path / "missing.jsonl")

    def test_reopen_appends_after_header_check(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = self._open(path)
        journal.record({"host_id": 0, "ok": True})
        journal.close()
        journal = self._open(path)  # resume: validates, appends
        journal.record({"host_id": 1, "ok": True})
        journal.close()
        assert set(CampaignJournal.load(path)) == {0, 1}
        assert len(path.read_text().splitlines()) == 3  # one header only

    def test_config_digest_ignores_execution_details(self):
        base = _config_dict(CampaignConfig(hosts=2, vms=4))
        w4 = _config_dict(CampaignConfig(hosts=2, vms=4, workers=4))
        vec = _config_dict(CampaignConfig(hosts=2, vms=4, backend="vectorized"))
        other = _config_dict(CampaignConfig(hosts=3, vms=4))
        assert config_digest(base) == config_digest(w4) == config_digest(vec)
        assert config_digest(base) != config_digest(other)


# ---------------------------------------------------------------------------
# Isolation auditor
# ---------------------------------------------------------------------------


class _FakeVm:
    def __init__(self, name, groups):
        self.name = name
        self.reserved_groups = frozenset(groups)
        self.backing = []


class _FakeHv:
    def __init__(self, vms):
        self.vms = {vm.name: vm for vm in vms}


class _FakeHost:
    def __init__(self, host_id, vms):
        self.host_id = host_id
        self.hv = _FakeHv(vms)


class TestIsolationAuditor:
    def test_clean_fleet_audits_clean(self):
        fleet = Fleet.boot(2, seed=31)
        fleet.host(0).create_vm(VmSpec(name="a", memory_bytes=1 * MiB))
        fleet.host(1).create_vm(VmSpec(name="b", memory_bytes=2 * MiB))
        auditor = IsolationAuditor(fleet)
        report = auditor.audit("placement")
        assert report.clean
        assert report.hosts_audited == 2
        assert report.to_dict()["violations"] == 0
        assert auditor.reports == [report]

    def test_exclude_skips_crashed_hosts(self):
        fleet = Fleet.boot(2, seed=31)
        auditor = IsolationAuditor(fleet, exclude=(0,))
        assert auditor.audit("final").hosts_audited == 1

    def test_detects_shared_tenant_group(self):
        fleet = _FakeFleet(
            [_FakeHost(0, [_FakeVm("a", {(0, 1)}), _FakeVm("b", {(0, 1)})])]
        )
        findings = IsolationAuditor._check_tenant_groups(fleet.hosts[0])
        assert len(findings) == 1
        assert findings[0].check == "tenant-groups"
        assert "'a'" in findings[0].detail and "'b'" in findings[0].detail

    def test_audit_emits_event_and_metrics(self):
        obs.enable(reset=True)
        try:
            fleet = Fleet.boot(1, seed=31)
            IsolationAuditor(fleet).audit("placement")
            events = [
                e for e in obs.tracer().events() if e.kind == "audit"
            ]
            assert len(events) == 1
            assert events[0].phase == "placement"
            assert events[0].violations == 0
            assert obs.METRICS.counter("audit.audits").value == 1
        finally:
            obs.disable()


class _FakeFleet:
    def __init__(self, hosts):
        self.hosts = hosts


# ---------------------------------------------------------------------------
# Chaos inside a host shard (run_host_task semantics)
# ---------------------------------------------------------------------------


def _host_task(chaos=(), host_id=0, vms=1):
    from repro.fleet.host import HostSpec, derive_host_seed

    return HostTask(
        spec=HostSpec(host_id=host_id, seed=derive_host_seed(0, host_id)),
        vm_specs=tuple(
            VmSpec(name=f"vm-{i:03d}", memory_bytes=1 * MiB) for i in range(vms)
        ),
        scenario="attack",
        budget=1,
        storm_errors=4,
        chaos=tuple(chaos),
    )


class TestRunHostTaskChaos:
    def test_worker_death_raises_until_kills_exhausted(self):
        task = _host_task(
            [ChaosSpec(kind=ChaosKind.WORKER_DEATH, host_id=0, kills=2)]
        )
        with pytest.raises(WorkerDeathError):
            run_host_task(task, attempt=1)
        with pytest.raises(WorkerDeathError):
            run_host_task(task, attempt=2)
        result = run_host_task(task, attempt=3)
        assert result["ok"]
        assert result["chaos"] == [{"chaos": "worker-death", "kills": 2}]

    def test_host_crash_returns_crashed_result(self):
        task = _host_task(
            [ChaosSpec(kind=ChaosKind.HOST_CRASH, host_id=0, at_clock=0.005)]
        )
        result = run_host_task(task)
        assert result["ok"] is False and result["crashed"]
        assert result["placed_bytes"] == 0
        assert result["vms"] == ["vm-000"]
        assert "host crash" in result["error"]

    def test_ue_storm_offlines_a_free_row_and_isolation_holds(self):
        task = _host_task(
            [ChaosSpec(kind=ChaosKind.UE_STORM, host_id=0, ue_errors=2)]
        )
        result = run_host_task(task)
        assert result["ok"], result.get("error")
        (note,) = result["chaos"]
        assert note["chaos"] == "ue-storm"
        assert note["ue_errors"] == 2
        # 2 UEs x ue_weight 8 crosses the offline threshold; the row was
        # free, so retirement completes without any migration.
        assert note["state"] == "offlined"
        assert any(v["ue"] >= 2 for v in note["health"].values())

    def test_chaos_results_are_attempt_pure(self):
        task = _host_task(
            [ChaosSpec(kind=ChaosKind.UE_STORM, host_id=0, ue_errors=2)]
        )
        assert run_host_task(task, attempt=1) == run_host_task(task, attempt=2)


# ---------------------------------------------------------------------------
# Migration digest corruption (satellite: rollback under injected fault)
# ---------------------------------------------------------------------------


def _flip_one_byte(buffers):
    name = sorted(buffers)[0]
    buffers[name][0] ^= 0xFF


class TestDigestCorruptionRollback:
    def _fleet_with_vm(self):
        fleet = Fleet.boot(2, seed=71)
        src = fleet.host(0)
        vm = src.create_vm(VmSpec(name="tenant", memory_bytes=1 * MiB))
        src.hv.machine.dram.write(vm.backing[0].start, b"payload!" * 8)
        return fleet, src, fleet.host(1)

    def test_migrate_vm_rolls_back_and_source_keeps_serving(self):
        fleet, src, dst = self._fleet_with_vm()
        before = src.hv.machine.dram.read_region(
            src.hv.vm("tenant").backing[0].start, 64
        )
        with pytest.raises(MigrationError, match="failed verification"):
            migrate_vm(src, dst, "tenant", corrupt=_flip_one_byte)
        # Source untouched and still serving its data.
        assert "tenant" in src.hv.vms
        assert "tenant" not in dst.hv.vms
        after = src.hv.machine.dram.read_region(
            src.hv.vm("tenant").backing[0].start, 64
        )
        assert after == before
        # And the isolation invariants held through the rollback.
        report = IsolationAuditor(fleet).audit("post-rollback")
        assert report.clean, [f.detail for f in report.findings]

    def test_evacuate_host_records_incident_and_retries_clean(self):
        fleet, src, dst = self._fleet_with_vm()
        records, incidents = evacuate_host(
            fleet, src, make_scheduler("best-fit"), corrupt=_flip_one_byte
        )
        assert [i["incident"] for i in incidents] == [
            "digest-corruption-rollback"
        ]
        # The clean retry completed the move.
        assert [r.vm for r in records] == ["tenant"]
        assert records[0].verified
        assert "tenant" in dst.hv.vms and "tenant" not in src.hv.vms
        report = IsolationAuditor(fleet, exclude=(0,)).audit("post-evac")
        assert report.clean


# ---------------------------------------------------------------------------
# Chaos campaigns end to end
# ---------------------------------------------------------------------------

#: Seed whose generated plan covers all five chaos kinds at 4 hosts
#: (asserted below so a generator change can't silently gut coverage).
FULL_COVERAGE_SEED = 0

_CAMPAIGN = dict(hosts=4, vms=10, budget=1, chaos_seed=FULL_COVERAGE_SEED,
                 chaos_events=6)


class TestChaosCampaign:
    def test_coverage_seed_covers_every_kind(self):
        plan = ChaosPlan.generate(FULL_COVERAGE_SEED, 4, events=6, arrivals=10)
        assert {s.kind for s in plan.specs} == set(ChaosKind)

    def test_campaign_survives_chaos_and_audits_clean(self):
        report = FleetCampaign(CampaignConfig(**_CAMPAIGN)).run()
        # Crashed hosts are degraded outcomes, not campaign failures.
        assert report.hosts_crashed >= 1
        assert report.degraded["crashed_hosts"]
        assert report.audit_clean
        phases = [a["phase"] for a in report.audit]
        assert phases[0] == "placement" and phases[-1] == "final"
        assert any(p.startswith("evacuation:") for p in phases)
        assert report.supervision["worker_deaths"] >= 1

    def test_digest_identical_across_worker_counts(self):
        serial = FleetCampaign(CampaignConfig(workers=1, **_CAMPAIGN)).run()
        parallel = FleetCampaign(CampaignConfig(workers=2, **_CAMPAIGN)).run()
        assert serial.digest() == parallel.digest()
        # Supervision is execution metadata: present, but never hashed.
        assert serial.supervision["outcomes"]

    def test_queue_stall_forces_final_backpressure_rejections(self):
        config = CampaignConfig(
            hosts=2, vms=8, budget=1, queue_depth=2, chaos_seed=1,
        )
        campaign = FleetCampaign(config)
        campaign._chaos_plan = ChaosPlan(
            specs=[
                ChaosSpec(
                    kind=ChaosKind.QUEUE_STALL, host_id=-1,
                    arrival_index=2, stall_s=0.002, stall_width=4,
                )
            ]
        )
        report = campaign.run()
        # Inside the wedged window a full queue's rejection is final.
        assert report.rejected_by_reason.get("queue-full", 0) >= 1

    def test_resume_from_partial_journal_is_bit_identical(self, tmp_path):
        full = tmp_path / "full.jsonl"
        config = CampaignConfig(**_CAMPAIGN)
        baseline = FleetCampaign(config).run(journal_path=str(full))

        # Keep the header and the first completed shard: the journal a
        # SIGKILL right after the first checkpoint would leave behind.
        partial = tmp_path / "partial.jsonl"
        lines = full.read_text().splitlines()
        partial.write_text("\n".join(lines[:2]) + "\n")

        campaign = FleetCampaign(config)
        resumed = campaign.run(resume_path=str(partial))
        assert campaign.resumed_shards == 1
        assert resumed.digest() == baseline.digest()
        # The resumed journal now holds every shard.
        loaded = CampaignJournal.load(partial)
        assert len(loaded) == config.hosts

    def test_resume_refuses_mismatched_config(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        FleetCampaign(CampaignConfig(**_CAMPAIGN)).run(
            journal_path=str(journal)
        )
        other = dict(_CAMPAIGN, chaos_seed=FULL_COVERAGE_SEED + 1)
        with pytest.raises(ChaosError, match="different campaign"):
            FleetCampaign(CampaignConfig(**other)).run(
                resume_path=str(journal)
            )

    def test_resume_tolerates_different_worker_count(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        config = CampaignConfig(**_CAMPAIGN)
        baseline = FleetCampaign(config).run(journal_path=str(journal))
        resumed = FleetCampaign(
            CampaignConfig(workers=2, **_CAMPAIGN)
        ).run(resume_path=str(journal))
        assert resumed.digest() == baseline.digest()

    def test_chaos_events_reach_obs(self):
        obs.enable(reset=True)
        try:
            FleetCampaign(CampaignConfig(**_CAMPAIGN)).run()
            chaos_kinds = {
                e.chaos for e in obs.tracer().events() if e.kind == "chaos"
            }
            assert "worker-death" in chaos_kinds
            assert "host-crash" in chaos_kinds
            assert obs.METRICS.counter("audit.audits").value >= 2
        finally:
            obs.disable()


# ---------------------------------------------------------------------------
# SIGKILL + resume through the real CLI (the acceptance criterion)
# ---------------------------------------------------------------------------


@pytest.mark.tier2
@pytest.mark.parametrize("workers", [1, 2])
def test_cli_sigkill_and_resume_reproduces_digest(tmp_path, workers):
    """Kill a journaled chaos campaign mid-run with SIGKILL, resume it,
    and require the merged digest to equal an uninterrupted run's."""
    import signal
    import subprocess
    import sys

    env = dict(os.environ, PYTHONPATH="src")
    base = [
        sys.executable, "-m", "repro", "fleet",
        "--hosts", "4", "--vms", "10", "--budget", "1",
        "--chaos-seed", str(FULL_COVERAGE_SEED), "--chaos-events", "6",
        "--workers", str(workers),
    ]

    full = subprocess.run(
        base, capture_output=True, text=True, env=env, timeout=600
    )
    assert full.returncode == 0, full.stderr
    (digest_line,) = [
        line for line in full.stdout.splitlines() if "merge digest" in line
    ]

    journal = tmp_path / "campaign.jsonl"
    proc = subprocess.Popen(
        base + ["--journal", str(journal)],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, env=env,
    )
    try:
        deadline = time.monotonic() + 300
        while time.monotonic() < deadline:
            if journal.exists() and len(journal.read_text().splitlines()) >= 2:
                break
            if proc.poll() is not None:
                break
            time.sleep(0.05)
        else:
            pytest.fail("journal never got its first checkpoint")
        assert proc.poll() is None, "campaign finished before the kill"
        proc.send_signal(signal.SIGKILL)
    finally:
        proc.wait(timeout=60)

    resumed = subprocess.run(
        base + ["--resume", str(journal)],
        capture_output=True, text=True, env=env, timeout=600,
    )
    assert resumed.returncode == 0, resumed.stderr
    assert "resume:" in resumed.stdout
    assert digest_line in resumed.stdout
