"""Service-core tests: the state machine's replay contract, the async
request path (typed faults, batched drains, real BUSY backpressure),
the in-process server/client pair, graceful drain, and a small
end-to-end loadgen run with replay-digest verification."""

from __future__ import annotations

import asyncio

import pytest

from repro import obs
from repro.errors import ServeError
from repro.serve.client import AsyncServeClient, ServeFailure
from repro.serve.core import (
    FleetStateMachine,
    ServeCore,
    ServiceConfig,
    replay_request_log,
)
from repro.serve.loadgen import (
    LoadMix,
    LoadgenConfig,
    run_loadgen,
    serve_and_load,
)
from repro.serve.protocol import ErrorCode, Request
from repro.serve.server import ServeServer
from repro.units import MiB


def _place(name: str, mib: int = 1, **extra) -> Request:
    params = {"name": name, "memory_bytes": mib * MiB, **extra}
    return Request(op="place_vm", params=params)


class TestServiceConfig:
    """Config validation and wire round-trip."""

    def test_round_trip_ignores_unknown_keys(self):
        cfg = ServiceConfig(hosts=3, policy="spread", queue_depth=8)
        doc = cfg.to_dict()
        doc["from_the_future"] = True
        assert ServiceConfig.from_dict(doc) == cfg

    def test_validation(self):
        with pytest.raises(ServeError):
            ServiceConfig(hosts=0)
        with pytest.raises(ServeError):
            ServiceConfig(policy="mystery")
        with pytest.raises(ServeError):
            ServiceConfig(attack_budget=0)


class TestFleetStateMachine:
    """The synchronous request path and its replay/digest contract."""

    def test_operations_append_to_log(self):
        sm = FleetStateMachine(ServiceConfig(hosts=1))
        assert sm.apply_place("a", MiB)
        sm.apply_drain()
        assert "a" in sm.owner
        sm.apply_attack(0, 1)
        sm.apply_evict("a")
        assert [e["op"] for e in sm.log] == ["place", "drain", "attack", "evict"]

    def test_evict_unknown_raises(self):
        sm = FleetStateMachine(ServiceConfig(hosts=1))
        with pytest.raises(ServeError):
            sm.apply_evict("ghost")

    def test_attack_on_idle_host(self):
        sm = FleetStateMachine(ServiceConfig(hosts=1))
        result = sm.apply_attack(0, 1)
        assert result["idle"] and result["contained"]

    def test_replay_reproduces_digest_bit_identically(self):
        config = ServiceConfig(hosts=2, seed=11)
        sm = FleetStateMachine(config)
        for i in range(6):
            sm.apply_place(f"vm{i}", (1 + i % 3) * MiB)
        sm.apply_drain()
        sm.apply_attack(0, 2)
        sm.apply_evict(next(iter(sm.owner)))
        replayed = replay_request_log(config, sm.log)
        assert replayed.state_digest() == sm.state_digest()
        assert replayed.state_snapshot() == sm.state_snapshot()

    def test_digest_scrubs_backend(self):
        """Identical op sequences digest identically across backends."""
        logs = {}
        for backend in ("scalar", "vectorized"):
            config = ServiceConfig(hosts=1, backend=backend, seed=5)
            sm = FleetStateMachine(config)
            sm.apply_place("a", 2 * MiB)
            sm.apply_drain()
            sm.apply_attack(0, 1)
            logs[backend] = sm.state_digest()
        assert logs["scalar"] == logs["vectorized"]

    def test_replay_rejects_unknown_op(self):
        with pytest.raises(ServeError):
            replay_request_log(ServiceConfig(hosts=1), [{"op": "warp"}])


class TestServeCore:
    """The async request router, driven directly (no sockets)."""

    def _core(self, **kwargs) -> ServeCore:
        return ServeCore(ServiceConfig(hosts=1, **kwargs))

    def test_place_and_evict(self):
        core = self._core()

        async def run():
            placed = await core.handle(_place("a"))
            assert placed.ok and placed.result["host"] == 0
            evicted = await core.handle(
                Request(op="evict_vm", params={"name": "a"})
            )
            assert evicted.ok and evicted.result["host"] == 0

        asyncio.run(run())

    def test_duplicate_name_is_invalid(self):
        core = self._core()

        async def run():
            assert (await core.handle(_place("a"))).ok
            dup = await core.handle(_place("a"))
            assert not dup.ok
            assert dup.error.code is ErrorCode.INVALID
            assert dup.error.reason == "duplicate-name"

        asyncio.run(run())

    @pytest.mark.parametrize(
        "params",
        [
            {},
            {"name": ""},
            {"name": "a"},
            {"name": "a", "memory_bytes": -1},
            {"name": "a", "memory_bytes": True},
            {"name": "a", "memory_mib": 0},
            {"name": "a", "memory_bytes": MiB, "socket": -1},
        ],
    )
    def test_bad_place_params(self, params):
        core = self._core()

        async def run():
            response = await core.handle(
                Request(op="place_vm", params=params)
            )
            assert not response.ok
            assert response.error.code is ErrorCode.INVALID

        asyncio.run(run())

    def test_unknown_op_and_version(self):
        core = self._core()

        async def run():
            unknown = await core.handle(Request(op="explode"))
            assert unknown.error.code is ErrorCode.UNKNOWN_OP
            stale = await core.handle(Request(op="health", v=99))
            assert stale.error.code is ErrorCode.UNSUPPORTED_VERSION

        asyncio.run(run())

    def test_flood_fills_queue_to_busy(self):
        """More same-tick placements than queue_depth: the overflow
        gets a real 429-style BUSY, not a block and not a traceback."""
        depth = 4
        core = self._core(queue_depth=depth)

        async def run():
            responses = await asyncio.gather(
                *(core.handle(_place(f"v{i}")) for i in range(depth + 3))
            )
            busy = [
                r for r in responses
                if not r.ok and r.error.code is ErrorCode.BUSY
            ]
            assert len(busy) == 3
            assert all(r.error.reason == "queue-full" for r in busy)
            assert busy[0].error.extra["queue_depth"] == depth
            assert core.counters["rejections"] == 3

        asyncio.run(run())

    def test_capacity_rejection_carries_shortfall(self):
        core = self._core(max_retries=0)

        async def run():
            i = 0
            while True:
                response = await core.handle(_place(f"v{i}"))
                if not response.ok:
                    return response
                i += 1
                assert i < 10_000

        response = asyncio.run(run())
        assert response.error.code is ErrorCode.CAPACITY
        assert response.error.reason == "retries-exhausted"
        assert response.error.extra["requested_groups"] >= 1
        assert "available_groups" in response.error.extra

    def test_evict_not_found(self):
        core = self._core()

        async def run():
            response = await core.handle(
                Request(op="evict_vm", params={"name": "ghost"})
            )
            assert response.error.code is ErrorCode.NOT_FOUND

        asyncio.run(run())

    def test_attack_unknown_host_not_found(self):
        core = self._core()

        async def run():
            response = await core.handle(
                Request(op="run_attack", params={"host": 99})
            )
            assert response.error.code is ErrorCode.NOT_FOUND

        asyncio.run(run())

    def test_reads_and_info(self):
        core = self._core()

        async def run():
            await core.handle(_place("a"))
            health = await core.handle(Request(op="health"))
            assert health.result["hosts"][0]["vms"] == 1
            cap = await core.handle(Request(op="capacity"))
            assert cap.result["placed_vms"] == 1
            assert "0" in cap.result["hosts"]
            info = await core.handle(Request(op="info"))
            assert info.result["config"]["hosts"] == 1
            assert "place_vm" in info.result["ops"]
            metrics = await core.handle(Request(op="metrics"))
            assert metrics.result["serve"]["ops.place_vm"] == 1

        asyncio.run(run())

    def test_shutdown_refuses_new_mutations(self):
        core = self._core()
        fired = []
        core.shutdown_callback = lambda: fired.append(True)

        async def run():
            down = await core.handle(Request(op="shutdown"))
            assert down.ok and "digest" in down.result
            refused = await core.handle(_place("late"))
            assert refused.error.code is ErrorCode.SHUTTING_DOWN
            await asyncio.sleep(0)  # let the call_soon callback run
            assert fired

        asyncio.run(run())

    def test_internal_errors_are_typed_not_tracebacks(self):
        core = self._core()
        core.sm.apply_attack = None  # type: ignore[assignment] — force a TypeError

        async def run():
            response = await core.handle(
                Request(op="run_attack", params={"host": 0})
            )
            assert not response.ok
            assert response.error.code is ErrorCode.INTERNAL
            assert response.error.reason == "TypeError"
            assert "Traceback" not in response.error.detail

        asyncio.run(run())

    def test_obs_serve_metrics_fold(self):
        """ServeRequestEvent feeds serve.requests / serve.rejections."""
        obs.enable(reset=True)
        try:
            depth = 2
            core = self._core(queue_depth=depth)

            async def run():
                await asyncio.gather(
                    *(core.handle(_place(f"v{i}")) for i in range(depth + 2))
                )
                await core.handle(Request(op="health"))

            asyncio.run(run())
            snap = obs.metrics_snapshot()
            counters = snap["counters"]
            assert counters["serve.requests"] == depth + 3
            assert counters["serve.rejections"] == 2
            assert counters["serve.rejections.queue-full"] == 2
            assert counters["serve.ops.health"] == 1
            assert snap["histograms"]["serve.request_wall_ns"]["count"] == (
                depth + 3
            )
        finally:
            obs.disable(reset=True)


class TestServerInProcess:
    """The TCP server + async client, in one event loop."""

    def test_round_trip_and_pipelining(self):
        async def run():
            server = ServeServer(ServiceConfig(hosts=1), port=0)
            await server.start()
            client = await AsyncServeClient().connect(port=server.port)
            try:
                results = await asyncio.gather(
                    *(
                        client.request(
                            "place_vm", name=f"v{i}", memory_bytes=MiB
                        )
                        for i in range(3)
                    )
                )
                assert all(r["host"] == 0 for r in results)
                health = await client.request("health")
                assert health["hosts"][0]["vms"] == 3
            finally:
                await client.close()
                server.request_shutdown()
                await server.wait_closed()

        asyncio.run(run())

    def test_typed_failure_surfaces_as_serve_failure(self):
        async def run():
            server = ServeServer(ServiceConfig(hosts=1), port=0)
            await server.start()
            client = await AsyncServeClient().connect(port=server.port)
            try:
                with pytest.raises(ServeFailure) as exc:
                    await client.request("evict_vm", name="ghost")
                assert exc.value.fault.code is ErrorCode.NOT_FOUND
            finally:
                await client.close()
                server.request_shutdown()
                await server.wait_closed()

        asyncio.run(run())

    def test_malformed_line_gets_bad_request_response(self):
        async def run():
            server = ServeServer(ServiceConfig(hosts=1), port=0)
            await server.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            try:
                writer.write(b'{"id": 5, "nope\n')
                await writer.drain()
                from repro.serve.protocol import decode_response

                response = decode_response(await reader.readline())
                assert not response.ok
                assert response.error.code is ErrorCode.BAD_REQUEST
            finally:
                writer.close()
                server.request_shutdown()
                await server.wait_closed()

        asyncio.run(run())

    def test_graceful_drain_finishes_inflight_request(self):
        """request_shutdown mid-request: the in-flight response still
        arrives, then the connection closes."""

        async def run():
            server = ServeServer(ServiceConfig(hosts=1), port=0)
            await server.start()
            client = await AsyncServeClient().connect(port=server.port)
            try:
                await client.request("place_vm", name="a", memory_bytes=MiB)
                pending = asyncio.get_running_loop().create_task(
                    client.request("run_attack", host=0, budget=2)
                )
                # Wait until the request is genuinely in flight on the
                # server before draining (a request still in the socket
                # buffer races the stop-accepting close, like any
                # server that stops reading idle keep-alive conns).
                # The handler is synchronous and may finish before this
                # coroutine gets scheduled again, so a completed
                # response also ends the wait.
                while not pending.done() and not any(
                    c.inflight for c in server._conns
                ):
                    await asyncio.sleep(0.005)
                server.request_shutdown()
                result = await pending
                assert result["contained"] is not None
                await server.wait_closed()
                # The drained server must refuse new work: connection gone.
                with pytest.raises(ServeError):
                    await client.request("health")
            finally:
                await client.close()

        asyncio.run(run())

    def test_unix_socket_round_trip(self, tmp_path):
        async def run():
            path = str(tmp_path / "serve.sock")
            server = ServeServer(
                ServiceConfig(hosts=1), socket_path=path
            )
            addr = await server.start()
            assert addr == f"unix:{path}"
            client = await AsyncServeClient().connect(socket_path=path)
            try:
                info = await client.request("info")
                assert info["protocol"] == 1
            finally:
                await client.close()
                server.request_shutdown()
                await server.wait_closed()
            import os

            assert not os.path.exists(path)  # cleaned up on drain

        asyncio.run(run())


class TestLoadgen:
    """Small end-to-end runs with replay verification."""

    def test_mix_parse(self):
        mix = LoadMix.parse("place=10,evict=0,attack=0")
        assert mix.place == 10 and mix.evict == 0
        assert mix.health == LoadMix().health  # defaults retained
        with pytest.raises(ServeError):
            LoadMix.parse("bogus=1")
        with pytest.raises(ServeError):
            LoadMix.parse("place")
        with pytest.raises(ServeError):
            LoadMix(place=0, evict=0, attack=0, health=0, capacity=0, metrics=0).table()

    def test_config_validation(self):
        with pytest.raises(ServeError):
            LoadgenConfig(requests=0)
        with pytest.raises(ServeError):
            LoadgenConfig(connections=0)

    def test_serve_and_load_replay_matches(self):
        config = LoadgenConfig(
            requests=300,
            connections=3,
            window=8,
            seed=2,
            mix=LoadMix(place=40, evict=15, attack=1, health=24, capacity=10, metrics=10),
            attack_budget=1,
        )
        report = asyncio.run(
            serve_and_load(ServiceConfig(hosts=1, seed=2), config)
        )
        assert report.requests == 300
        assert report.errors == 0
        assert report.replay_verified, (
            f"digest mismatch: {report.server_digest} != {report.replay_digest}"
        )
        assert report.rps > 0 and report.p99_ms >= report.p50_ms
        payload = report.to_dict()
        assert payload["replay_verified"] is True
        assert "MATCH" in report.render_text()

    def test_loadgen_against_running_server(self):
        async def run():
            server = ServeServer(ServiceConfig(hosts=1, seed=4), port=0)
            await server.start()
            try:
                report = await run_loadgen(
                    LoadgenConfig(
                        requests=120, connections=2, window=4, seed=4
                    ),
                    port=server.port,
                )
            finally:
                server.request_shutdown()
                await server.wait_closed()
            assert report.requests == 120
            assert report.replay_verified

        asyncio.run(run())
