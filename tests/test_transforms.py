"""Unit tests for repro.dram.transforms (paper §6, Table 1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dram.geometry import DRAMGeometry
from repro.dram.transforms import (
    ARTIFICIAL_GUARD_ROWS,
    INVERT_BITS,
    MIRROR_PAIRS,
    RepairMap,
    Side,
    TransformConfig,
    artificial_group_reservation,
    invert_row,
    mirror_row,
    scramble_row,
    scrambling_offline_fraction,
    subarray_isolation_preserved,
    transform_table,
    zebram_overhead,
)
from repro.errors import DramError

rows = st.integers(min_value=0, max_value=2047)


class TestMirroring:
    def test_even_rank_unchanged(self):
        assert mirror_row(0b10101010, rank=0) == 0b10101010

    def test_paper_example(self):
        # §6: 0b10000 (b4=1, b3=0) becomes 0b01000 on odd ranks.
        assert mirror_row(0b10000, rank=1) == 0b01000

    def test_swaps_all_three_pairs(self):
        # Set the low bit of each pair; mirroring moves it to the high bit.
        value = (1 << 3) | (1 << 5) | (1 << 7)
        expected = (1 << 4) | (1 << 6) | (1 << 8)
        assert mirror_row(value, rank=1) == expected

    @given(rows)
    def test_involution_on_odd_rank(self, row):
        assert mirror_row(mirror_row(row, 1), 1) == row

    @given(rows)
    def test_preserves_bits_outside_pairs(self, row):
        mirrored = mirror_row(row, 1)
        mask = sum((1 << i) | (1 << j) for i, j in MIRROR_PAIRS)
        assert (mirrored & ~mask) == (row & ~mask)


class TestInversion:
    def test_a_side_unchanged(self):
        assert invert_row(0b111, Side.A) == 0b111

    def test_b_side_inverts_configured_bits(self):
        assert invert_row(0, Side.B) == sum(1 << b for b in INVERT_BITS)

    @given(rows)
    def test_involution(self, row):
        assert invert_row(invert_row(row, Side.B), Side.B) == row

    @given(rows)
    def test_low_bits_unchanged(self, row):
        assert invert_row(row, Side.B) & 0b111 == row & 0b111


class TestScrambling:
    @given(rows)
    def test_involution(self, row):
        assert scramble_row(scramble_row(row)) == row

    @given(rows)
    def test_stays_within_8_row_block(self, row):
        # §6: scrambling reorders rows within an aligned 8-row block.
        assert scramble_row(row) // 8 == row // 8

    def test_identity_when_b3_clear(self):
        assert scramble_row(0b0101) == 0b0101

    def test_xors_b1_b2_when_b3_set(self):
        assert scramble_row(0b1000) == 0b1110


class TestTransformConfig:
    def test_ddr5_disables_mirroring_and_inversion(self):
        cfg = TransformConfig(ddr5=True)
        assert cfg.internal_row(0b10000, rank=1, side=Side.B) == 0b10000

    def test_ddr5_keeps_scrambling(self):
        cfg = TransformConfig(ddr5=True, scrambling=True)
        assert cfg.internal_row(0b1000, rank=0, side=Side.A) == 0b1110

    def test_rejects_negative_row(self):
        with pytest.raises(DramError):
            TransformConfig().internal_row(-1, 0, Side.A)

    @given(rows, st.integers(0, 1), st.sampled_from(list(Side)))
    def test_internal_row_is_bijective_per_context(self, row, rank, side):
        cfg = TransformConfig(scrambling=True)
        image = cfg.internal_row(row, rank, side)
        # Injectivity over a window: no other row in the same 2048-row
        # span maps to the same image under the same (rank, side).
        assert 0 <= image < 4096


class TestTable1:
    def test_shape(self):
        table = transform_table()
        assert len(table) == 4
        assert all(f"b{i}" in row for row in table for i in range(11))

    def test_even_rank_a_side_identity(self):
        row = transform_table()[0]
        assert row["rank"] == "even" and row["side"] == "A"
        assert all(row[f"b{i}"] == f"b{i}" for i in range(11))

    def test_odd_rank_mirrors(self):
        odd_a = next(
            r for r in transform_table() if r["rank"] == "odd" and r["side"] == "A"
        )
        assert odd_a["b3"] == "b4" and odd_a["b4"] == "b3"
        assert odd_a["b7"] == "b8" and odd_a["b8"] == "b7"

    def test_b_side_inverts(self):
        even_b = next(
            r for r in transform_table() if r["rank"] == "even" and r["side"] == "B"
        )
        assert even_b["b3"] == "!b3"
        assert even_b["b0"] == "b0"

    def test_odd_b_combines_both(self):
        odd_b = next(
            r for r in transform_table() if r["rank"] == "odd" and r["side"] == "B"
        )
        assert odd_b["b3"] == "!b4"


class TestIsolationPreservation:
    """§6: power-of-2 subarray sizes in [512, 2048] are unaffected."""

    @pytest.mark.parametrize("size", [512, 1024, 2048])
    def test_power_of_two_sizes_safe(self, size):
        assert subarray_isolation_preserved(size, TransformConfig())

    @pytest.mark.parametrize("size", [768, 1536, 640])
    def test_non_power_of_two_sizes_broken(self, size):
        assert not subarray_isolation_preserved(size, TransformConfig())

    def test_ddr5_makes_any_size_safe_without_scrambling(self):
        # §8.2: DDR5 undoes mirroring/inversion at each device.
        assert subarray_isolation_preserved(768, TransformConfig(ddr5=True))

    def test_scrambling_safe_for_multiple_of_8(self):
        cfg = TransformConfig(mirroring=False, inversion=False, scrambling=True)
        assert subarray_isolation_preserved(24, cfg)

    def test_scrambling_breaks_non_multiple_of_8(self):
        cfg = TransformConfig(mirroring=False, inversion=False, scrambling=True)
        assert not subarray_isolation_preserved(12, cfg)

    def test_small_test_geometry_sizes_safe(self):
        # The 8-row subarrays used by the test geometry keep isolation.
        assert subarray_isolation_preserved(8, TransformConfig())


class TestOverheadArithmetic:
    """The paper's §3/§6 percentages."""

    def test_scrambling_fraction_512(self):
        assert scrambling_offline_fraction(513) == pytest.approx(8 / 513)

    def test_scrambling_zero_for_multiple_of_8(self):
        assert scrambling_offline_fraction(1024) == 0.0

    def test_artificial_group_512(self):
        reserved, frac = artificial_group_reservation(512)
        assert reserved == 2 * ARTIFICIAL_GUARD_ROWS
        assert frac == pytest.approx(0.015625)  # ~1.56 %

    def test_artificial_group_2048(self):
        _, frac = artificial_group_reservation(2048)
        assert frac == pytest.approx(0.00390625)  # ~0.39 %

    def test_artificial_group_rounds_up(self):
        reserved, frac = artificial_group_reservation(600)
        assert frac == pytest.approx(reserved / 1024)

    def test_zebram_50_percent_at_1_guard(self):
        assert zebram_overhead(1) == pytest.approx(0.50)

    def test_zebram_80_percent_at_4_guards(self):
        assert zebram_overhead(4) == pytest.approx(0.80)

    def test_zebram_rejects_negative(self):
        with pytest.raises(DramError):
            zebram_overhead(-1)


class TestRepairMap:
    def setup_method(self):
        self.geom = DRAMGeometry.small()
        self.repairs = RepairMap(self.geom)

    def test_resolve_identity_by_default(self):
        assert self.repairs.resolve(5) == 5

    def test_intra_subarray_repair_is_benign(self):
        self.repairs.add(2, 6)  # both in subarray 0
        assert self.repairs.inter_subarray_repairs() == []
        assert self.repairs.rows_to_offline() == []

    def test_inter_subarray_repair_flagged(self):
        self.repairs.add(2, 9)  # subarray 0 -> subarray 1
        assert self.repairs.inter_subarray_repairs() == [(2, 9)]
        assert self.repairs.rows_to_offline() == [2]

    def test_duplicate_repair_rejected(self):
        self.repairs.add(2, 9)
        with pytest.raises(DramError):
            self.repairs.add(2, 10)

    def test_out_of_range_rejected(self):
        with pytest.raises(Exception):
            self.repairs.add(0, self.geom.rows_per_bank)
