"""Property tests on the :class:`repro.mitigations.Mitigation` contract.

Every registered mitigation — whatever hypervisor it boots — must hold
the same interface invariants: deterministic placement (same machine
seed, same arrival order ⇒ same domains), capacity accounting that is
never negative and is restored by eviction, and — unless the mitigation
*declares* shared-domain semantics — no two tenants ever sharing a
protection domain.  The sweeps run every mitigation so a new
registration is covered the day it lands.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import MitigationError, PlacementError
from repro.hv import Machine, VmSpec
from repro.mitigations import (
    ALL_AUDIT_KINDS,
    MITIGATIONS,
    Mitigation,
    MitigationCapacity,
    make_mitigation,
    mitigation_names,
)
from repro.units import KiB, MiB

NAMES = mitigation_names()


def _boot(name: str, seed: int = 0, backend: str = "scalar"):
    mitigation = make_mitigation(name)
    hv = mitigation.boot(Machine.small(seed=seed, backend=backend))
    mitigation.attach(hv, seed=seed)
    return mitigation, hv


def _sizes(rng: random.Random, count: int, step: int = 256 * KiB) -> list[int]:
    """Backing-aligned VM sizes (64 KiB pages on the small machine)."""
    return [step * rng.randint(1, 6) for _ in range(count)]


class TestRegistry:
    def test_expected_mitigations_registered(self):
        assert set(NAMES) >= {
            "none", "siloz", "para", "catt", "domain-buddy", "guard-rows",
        }

    def test_names_sorted_and_unique(self):
        assert list(NAMES) == sorted(set(NAMES))

    @pytest.mark.parametrize("name", NAMES)
    def test_make_returns_named_instance(self, name):
        m = make_mitigation(name)
        assert isinstance(m, Mitigation)
        assert m.name == name
        assert m.summary, f"{name} has no summary"
        assert set(m.enforced_audit_kinds) <= set(ALL_AUDIT_KINDS)

    def test_unknown_name_rejected(self):
        with pytest.raises(MitigationError, match="unknown mitigation"):
            make_mitigation("definitely-not-registered")

    def test_duplicate_registration_rejected(self):
        from repro.mitigations.base import register

        taken = next(iter(MITIGATIONS))

        with pytest.raises(MitigationError, match="already registered"):
            @register
            class Duplicate(Mitigation):
                name = taken

        assert MITIGATIONS[taken].name == taken  # registry unscathed

    @pytest.mark.parametrize(
        ("name", "knobs"),
        [
            ("para", {"probability": 0.0}),
            ("para", {"probability": 1.5}),
            ("para", {"distance": 0}),
            ("catt", {"partitions_per_socket": 0}),
            ("catt", {"guard_rows": 60}),
            ("guard-rows", {"guard_rows": 0}),
            ("guard-rows", {"stripe_rows": 1}),
        ],
    )
    def test_bad_knobs_rejected(self, name, knobs):
        with pytest.raises(MitigationError):
            mitigation = make_mitigation(name, **knobs)
            mitigation.boot(Machine.small(seed=0))


class TestCapacityDataclass:
    def test_negative_fields_rejected(self):
        with pytest.raises(MitigationError, match="negative"):
            MitigationCapacity(
                total_bytes=-1, guest_bytes=0, free_guest_bytes=0, reserved_bytes=0
            )
        with pytest.raises(MitigationError, match="negative"):
            MitigationCapacity(
                total_bytes=8, guest_bytes=4, free_guest_bytes=-2, reserved_bytes=0
            )

    def test_loss_fraction(self):
        cap = MitigationCapacity(
            total_bytes=32 * MiB,
            guest_bytes=24 * MiB,
            free_guest_bytes=24 * MiB,
            reserved_bytes=2 * MiB,
        )
        assert cap.loss_fraction == 2 / 32
        assert cap.to_dict()["loss_fraction"] == round(2 / 32, 6)

    def test_zero_total_is_total_loss(self):
        cap = MitigationCapacity(
            total_bytes=0, guest_bytes=0, free_guest_bytes=0, reserved_bytes=0
        )
        assert cap.loss_fraction == 0.0


class TestPlacementDeterminism:
    @pytest.mark.parametrize("name", NAMES)
    @pytest.mark.parametrize("seed", range(10))
    def test_same_seed_same_domains(self, name, seed):
        rng = random.Random(f"placement:{name}:{seed}")
        sizes = _sizes(rng, 3)
        placements = []
        for _ in range(2):
            mitigation, hv = _boot(name, seed=seed)
            record = {}
            for i, size in enumerate(sizes):
                vm = hv.create_vm(VmSpec(name=f"vm{i}", memory_bytes=size))
                record[vm.name] = (
                    tuple(vm.node_ids),
                    tuple(sorted(mitigation.domains_of(hv, vm))),
                )
            placements.append(record)
        assert placements[0] == placements[1], (
            f"{name} placement not deterministic at seed {seed}"
        )


class TestCapacityAccounting:
    @pytest.mark.parametrize("name", NAMES)
    def test_capacity_never_negative_while_filling(self, name):
        mitigation, hv = _boot(name)
        i = 0
        while True:
            cap = mitigation.capacity(hv)
            assert cap.free_guest_bytes >= 0
            assert cap.guest_bytes <= cap.total_bytes
            assert 0.0 <= cap.loss_fraction <= 1.0
            try:
                hv.create_vm(VmSpec(name=f"fill{i}", memory_bytes=1 * MiB))
            except PlacementError:
                break
            i += 1
            assert i < 64, f"{name} never ran out of capacity"
        assert i >= 1, f"{name} placed no VMs at all"
        final = mitigation.capacity(hv)
        assert final.free_guest_bytes >= 0
        assert 0.0 <= final.loss_fraction <= 1.0

    @pytest.mark.parametrize("name", NAMES)
    def test_eviction_restores_free_bytes(self, name):
        mitigation, hv = _boot(name)
        before = mitigation.capacity(hv)
        hv.create_vm(VmSpec(name="a", memory_bytes=1 * MiB))
        hv.create_vm(VmSpec(name="b", memory_bytes=1 * MiB))
        mid = mitigation.capacity(hv)
        assert mid.free_guest_bytes < before.free_guest_bytes
        for name_ in ("a", "b"):
            hv.destroy_vm(name_)
            hv.release_reservation(name_)
        after = mitigation.capacity(hv)
        # Static accounting (total/guest/reserved) never moves; the free
        # pool returns to exactly its pre-placement level.
        assert after == before

    @pytest.mark.parametrize("name", NAMES)
    def test_capacity_loss_matches_identity(self, name):
        mitigation, hv = _boot(name)
        cap = mitigation.capacity(hv)
        geom = hv.machine.dram.geom
        assert cap.total_bytes == geom.total_bytes
        # Everything the mitigation reserves must come out of somewhere:
        # guest pool + host pool + reserved cover the module.
        assert cap.guest_bytes + cap.reserved_bytes <= cap.total_bytes


class TestDomainDisjointness:
    @pytest.mark.parametrize("name", NAMES)
    @pytest.mark.parametrize("seed", range(30))
    def test_no_shared_domains_unless_declared(self, name, seed):
        mitigation, hv = _boot(name, seed=seed % 3)
        rng = random.Random(f"disjoint:{name}:{seed}")
        vms = []
        for i, size in enumerate(_sizes(rng, rng.randint(2, 4))):
            try:
                vms.append(hv.create_vm(VmSpec(name=f"vm{i}", memory_bytes=size)))
            except PlacementError:
                break
        assert vms, "placed no VMs"
        claims: dict = {}
        overlaps = []
        for vm in vms:
            for domain in mitigation.domains_of(hv, vm):
                if domain in claims and claims[domain] != vm.name:
                    overlaps.append((domain, claims[domain], vm.name))
                claims[domain] = vm.name
        if mitigation.shared_domains:
            # Shared-pool semantics must be *declared*, and the sweeps
            # must actually witness sharing somewhere (else the flag is
            # dead weight) — asserted aggregate in test_shared_flag below.
            return
        assert not overlaps, (
            f"{name} placed two tenants in one protection domain: {overlaps}"
        )
        mitigation.assert_isolation(_FakeHost(hv, mitigation))

    def test_shared_flag_is_honest(self):
        # At least one shared-domain mitigation must demonstrably share.
        shared = [n for n in NAMES if make_mitigation(n).shared_domains]
        assert shared, "no mitigation declares shared domains"
        witnessed = False
        for name in shared:
            mitigation, hv = _boot(name)
            vms = [
                hv.create_vm(VmSpec(name=f"vm{i}", memory_bytes=1 * MiB))
                for i in range(2)
            ]
            domains = [set(mitigation.domains_of(hv, vm)) for vm in vms]
            if domains[0] & domains[1]:
                witnessed = True
        assert witnessed, "shared_domains declared but never witnessed"


class _FakeHost:
    """The slice of :class:`repro.fleet.host.Host` that audits need."""

    def __init__(self, hv, mitigation):
        self.hv = hv
        self.mitigation = mitigation


class TestAuditFiltering:
    @pytest.mark.parametrize("name", NAMES)
    def test_fresh_host_audits_clean(self, name):
        mitigation, hv = _boot(name)
        hv.create_vm(VmSpec(name="a", memory_bytes=1 * MiB))
        hv.create_vm(VmSpec(name="b", memory_bytes=1 * MiB))
        assert mitigation.audit(hv) == ()
        mitigation.assert_isolation(_FakeHost(hv, mitigation))

    def test_shared_pool_colocation_is_unenforced_not_invisible(self):
        from repro.core import audit_hypervisor

        mitigation, hv = _boot("none")
        for i in range(2):
            hv.create_vm(VmSpec(name=f"vm{i}", memory_bytes=1 * MiB))
        raw = audit_hypervisor(hv)
        assert any(v.kind == "co-location" for v in raw), (
            "expected the raw audit to flag shared-pool co-location"
        )
        assert "co-location" not in mitigation.enforced_audit_kinds
        assert mitigation.audit(hv) == ()

    @pytest.mark.parametrize("name", NAMES)
    def test_host_report_shape_and_determinism(self, name):
        reports = []
        for _ in range(2):
            mitigation, hv = _boot(name, seed=5)
            hv.create_vm(VmSpec(name="a", memory_bytes=1 * MiB))
            reports.append(mitigation.host_report(_FakeHost(hv, mitigation)))
        assert reports[0] == reports[1]
        report = reports[0]
        assert report["name"] == name
        assert set(report) >= {
            "name", "shared_domains", "capacity", "activations", "refresh_ops",
        }
        assert report["capacity"]["free_guest_bytes"] >= 0


class TestParaHook:
    def test_refresh_ops_counts_and_is_seeded(self):
        counts = []
        for _ in range(2):
            mitigation, hv = _boot("para", seed=11)
            hv.create_vm(VmSpec(name="a", memory_bytes=1 * MiB))
            hv.machine.dram.activate_batch(0, 0, [70] * 2000)
            counts.append(mitigation.refresh_ops(hv))
        assert counts[0] == counts[1], "PARA refreshes not seed-deterministic"
        assert counts[0] > 0, "PARA never refreshed under 2000 ACTs at p=0.002"

    def test_distance_two_reaches_further(self):
        from repro.mitigations import ParaRefreshHook

        refreshed = {}
        for distance in (1, 2):
            mitigation, hv = _boot("none")
            hook = ParaRefreshHook(probability=1.0, distance=distance, seed=0)
            hv.machine.dram.register_hook(hook)
            hv.machine.dram.activate_batch(0, 0, [100] * 10)
            refreshed[distance] = hook.refreshes
        assert refreshed[2] == 2 * refreshed[1]
