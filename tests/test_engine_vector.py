"""Unit + edge-case tests for the vectorized engine and its kernels.

The broad equivalence evidence lives in ``tests/test_differential.py``
(seeded mixed programs, all three backends pairwise).  This module pins
the corners that random programs rarely hit — empty and single-element
batches, batches spanning a refresh-window boundary — plus the exactness
contracts of the individual numpy kernels: the MT19937 bulk-uniform
transplant, period detection, the vectorized address decode, the ECC
word-grouping paths, and the bulk ``read_region`` primitive.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

import repro.engine.vector as vec
from repro.dram.disturbance import DisturbanceProfile
from repro.dram.ecc import VECTOR_BITS_CUTOFF, WORD_BITS, EccEngine, _words_and_counts
from repro.dram.geometry import DRAMGeometry
from repro.dram.mapping import SkylakeMapping
from repro.dram.module import SimulatedDram
from repro.units import CACHE_LINE

BACKENDS = ("scalar", "batched", "vectorized")


def _dram(backend: str, *, seed: int = 11, refresh_window: float | None = None):
    geom = DRAMGeometry.small(rows_per_bank=128, rows_per_subarray=16)
    kwargs = {} if refresh_window is None else {"refresh_window": refresh_window}
    return SimulatedDram(
        geom,
        profile=DisturbanceProfile.test_scale(threshold_mean=60.0),
        seed=seed,
        backend=backend,
        **kwargs,
    )


def _snapshot(dram) -> dict:
    return {
        "flips": list(dram.flips_log),
        "stored": {k: sorted(v) for k, v in dram._flips.items()},
        "counters": vars(dram.counters).copy(),
        "clock": dram.clock,
        "trr": None if dram.trr is None else dram.trr.neighbor_refreshes,
    }


def _run_on_all_backends(ops, monkeypatch) -> None:
    """Apply *ops* to one DRAM per backend; assert identical snapshots.

    The vector path is forced (``MIN_VECTOR_BATCH = 0``) so even tiny
    batches exercise the numpy kernels instead of the batched fallback.
    """
    monkeypatch.setattr(vec, "MIN_VECTOR_BATCH", 0)
    snaps = {}
    for backend in BACKENDS:
        dram = _dram(backend, refresh_window=ops.get("refresh_window"))
        for bank, rows in ops["batches"]:
            dram.activate_batch(0, bank, rows)
        snaps[backend] = _snapshot(dram)
    for backend in BACKENDS[1:]:
        assert snaps[backend] == snaps["scalar"], backend


class TestBulkUniforms:
    def test_matches_sequential_draws(self):
        a, b = random.Random(99), random.Random(99)
        assert vec.bulk_uniforms(a, 700).tolist() == [b.random() for _ in range(700)]

    def test_stream_continues_exactly(self):
        a, b = random.Random(5), random.Random(5)
        vec.bulk_uniforms(a, 123)
        for _ in range(123):
            b.random()
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_empty_draw_is_a_no_op(self):
        a = random.Random(1)
        state = a.getstate()
        assert vec.bulk_uniforms(a, 0).size == 0
        assert a.getstate() == state


class TestFindPeriod:
    def test_tiled_pattern(self):
        assert vec._find_period(np.array([3, 7] * 50)) == 2

    def test_constant_row(self):
        assert vec._find_period(np.array([5] * 10)) == 1

    def test_partial_tile_rejected(self):
        # ends mid-period: 5 % 2 != 0, and no longer period tiles either
        assert vec._find_period(np.array([1, 2, 1, 2, 1])) == 0

    def test_aperiodic(self):
        assert vec._find_period(np.array([1, 2, 3, 4, 5, 6])) == 0

    def test_single_element(self):
        assert vec._find_period(np.array([4])) == 0


class TestBatchEdgeCases:
    """Identical behavior across all three backends on corner batches."""

    def test_empty_batch(self, monkeypatch):
        _run_on_all_backends({"batches": [(0, [])]}, monkeypatch)

    def test_single_element_batch(self, monkeypatch):
        _run_on_all_backends({"batches": [(1, [40])]}, monkeypatch)

    def test_single_element_then_hammer(self, monkeypatch):
        _run_on_all_backends(
            {"batches": [(2, [61]), (2, [60, 62] * 400)]}, monkeypatch
        )

    def test_batch_spanning_refresh_window(self, monkeypatch):
        # 60 ns per ACT and a 12 µs window: a 600-ACT batch crosses the
        # refresh-window boundary twice mid-batch, forcing the
        # window-reset path inside the span.
        _run_on_all_backends(
            {
                "refresh_window": 200 * 60e-9,
                "batches": [(0, [30, 32] * 300), (3, [77] * 500)],
            },
            monkeypatch,
        )

    def test_empty_batch_returns_no_flips(self):
        dram = _dram("vectorized")
        assert dram.activate_batch(0, 0, []) == []
        assert dram.clock == 0.0


class TestVectorizedDecode:
    def setup_method(self):
        self.geom = DRAMGeometry.small(rows_per_bank=128, rows_per_subarray=16)
        self.mapping = SkylakeMapping.for_small_geometry(self.geom)
        rng = random.Random(17)
        self.hpas = [
            rng.randrange(self.geom.total_bytes // CACHE_LINE) * CACHE_LINE
            for _ in range(500)
        ]

    def test_decode_media_batch_matches_scalar(self):
        socket, bank, row, col = self.mapping.decode_media_batch(
            np.asarray(self.hpas, dtype=np.int64)
        )
        for i, hpa in enumerate(self.hpas):
            media = self.mapping.decode(hpa)
            assert (
                media.socket,
                media.socket_bank_index(self.geom),
                media.row,
                media.col,
            ) == (socket[i], bank[i], row[i], col[i]), hex(hpa)

    def test_decode_flat_batch_matches_scalar(self):
        flat = self.mapping.decode_flat_batch(np.asarray(self.hpas, dtype=np.int64))
        for i, hpa in enumerate(self.hpas):
            expect = self.mapping._decode_flat(hpa)
            assert expect == tuple(int(f[i]) for f in flat), hex(hpa)

    def test_decode_lines_batch_matches_scalar_fallback(self):
        dram = SimulatedDram(self.geom, self.mapping, backend="scalar")
        rng = random.Random(23)
        for _ in range(50):
            hpa = rng.randrange(self.geom.total_bytes - 4096)
            length = rng.randrange(1, 4096 - 1)
            fast = self.mapping.decode_lines_batch(hpa, length)
            dram._lines_fast = None
            assert fast == dram._lines(hpa, length), (hpa, length)
            dram._lines_fast = self.mapping.decode_lines_batch

    def test_decode_batch_range_check(self):
        with pytest.raises(Exception):
            self.mapping.decode_media_batch(
                np.asarray([self.geom.total_bytes], dtype=np.int64)
            )


class TestEccVectorKernels:
    def _reference(self, bits: set[int]) -> list[tuple[int, int]]:
        by_word: dict[int, int] = {}
        for b in bits:
            by_word[b // WORD_BITS] = by_word.get(b // WORD_BITS, 0) + 1
        return sorted(by_word.items())

    @pytest.mark.parametrize("n", [1, 5, VECTOR_BITS_CUTOFF, 200])
    def test_words_and_counts_both_paths(self, n):
        rng = random.Random(n)
        bits = {rng.randrange(8 * 1024 * 8) for _ in range(n)}
        assert list(_words_and_counts(bits)) == self._reference(bits)

    @pytest.mark.parametrize("n", [1, 5, VECTOR_BITS_CUTOFF, 200])
    def test_correctable_bits_both_paths(self, n):
        rng = random.Random(1000 + n)
        bits = {rng.randrange(8 * 1024 * 8) for _ in range(n)}
        expect = {
            b for b in bits if sum(1 for o in bits if o // WORD_BITS == b // WORD_BITS) == 1
        }
        assert EccEngine().correctable_bits(bits) == expect


class TestReadRegion:
    def _prepare(self, backend: str):
        dram = _dram(backend, seed=3)
        rng = random.Random(3)
        for _ in range(6):
            hpa = rng.randrange(dram.geom.total_bytes // 256) * 256
            dram.write(hpa, bytes([rng.randrange(256)]) * 256)
        # hammer to plant real flips (threshold_mean=60 flips quickly)
        for bank in range(4):
            dram.activate_batch(0, bank, [50, 52] * 400)
        return dram, rng

    def test_bytes_match_per_line_read(self):
        reader, rng_a = self._prepare("vectorized")
        liner, _rng_b = self._prepare("vectorized")
        assert reader.flips_log, "no flips planted — test would be vacuous"
        for _ in range(20):
            hpa = rng_a.randrange(reader.geom.total_bytes - 3000)
            length = _rng_b.randrange(1, 3000)
            assert reader.read_region(hpa, length) == liner.read(hpa, length), (
                hpa,
                length,
            )

    def test_backend_independent(self):
        outs = {}
        for backend in BACKENDS:
            dram, rng = self._prepare(backend)
            hpa = rng.randrange(dram.geom.total_bytes - 8192)
            outs[backend] = (
                dram.read_region(hpa, 8192),
                _snapshot(dram),
            )
        for backend in BACKENDS[1:]:
            assert outs[backend] == outs["scalar"], backend

    def test_one_act_per_touched_row(self):
        dram = _dram("scalar")
        row_bytes = dram.geom.row_bytes
        before = dram.counters.activations
        dram.read_region(0, 4 * row_bytes)
        spanned = {
            (s, b, r) for s, b, r, _c, _o, _t in dram._lines(0, 4 * row_bytes)
        }
        assert dram.counters.activations - before == len(spanned)
