"""Retry/backoff edge coverage for ``fleet/admission.py``.

The admission controller was previously exercised only end-to-end
through fleet campaigns; these tests pin the queue's edge semantics
directly: retry-to-tail ordering under interleaved submit/drain,
doubling backoff values advancing the fleet clock, queue-full
backpressure, and evictions restoring both queue slots and fleet
placement capacity.
"""

from __future__ import annotations

import pytest

from repro.errors import HvError
from repro.fleet.admission import AdmissionController, RejectReason
from repro.fleet.host import Fleet
from repro.fleet.scheduler import make_scheduler
from repro.hv.hypervisor import VmSpec
from repro.units import MiB


def _controller(hosts: int = 1, **kwargs) -> AdmissionController:
    fleet = Fleet.boot(hosts, seed=3)
    return AdmissionController(fleet, make_scheduler("best-fit"), **kwargs)


def _fill(ctl: AdmissionController, size_mib: int = 1) -> list[str]:
    """Admit VMs until the fleet rejects one; returns admitted names."""
    admitted: list[str] = []
    i = 0
    while True:
        name = f"fill-{i}"
        assert ctl.submit(VmSpec(name=name, memory_bytes=size_mib * MiB))
        decision = ctl.drain()[0]
        if not decision.admitted:
            assert decision.reason is RejectReason.RETRIES_EXHAUSTED
            return admitted
        admitted.append(name)
        i += 1
        assert i < 10_000, "fleet never filled"


class TestQueueBackpressure:
    """submit() at the bounded door."""

    def test_full_queue_rejects_typed(self):
        ctl = _controller(queue_depth=2)
        assert ctl.submit(VmSpec(name="a", memory_bytes=MiB))
        assert ctl.submit(VmSpec(name="b", memory_bytes=MiB))
        assert not ctl.submit(VmSpec(name="c", memory_bytes=MiB))
        assert ctl.queued == 2
        rejected = ctl.decisions[-1]
        assert rejected.vm == "c" and not rejected.admitted
        assert rejected.reason is RejectReason.QUEUE_FULL

    def test_drain_restores_queue_capacity(self):
        """Draining (whatever the outcomes) frees slots at the door."""
        ctl = _controller(queue_depth=2)
        ctl.submit(VmSpec(name="a", memory_bytes=MiB))
        ctl.submit(VmSpec(name="b", memory_bytes=MiB))
        assert not ctl.submit(VmSpec(name="c", memory_bytes=MiB))
        assert len(ctl.drain()) == 2
        assert ctl.queued == 0
        assert ctl.submit(VmSpec(name="c2", memory_bytes=MiB))

    def test_queue_depth_validation(self):
        with pytest.raises(HvError):
            _controller(queue_depth=0)
        with pytest.raises(HvError):
            _controller(max_retries=-1)


class TestRetryToTail:
    """Requests that cannot be placed retry behind waiting work."""

    def test_unplaceable_request_decided_after_later_arrivals(self):
        ctl = _controller(max_retries=1)
        admitted = _fill(ctl)
        # Free exactly one small slot: "small" fits, "big" never will.
        ctl.fleet.hosts[0].remove_vm(admitted[0])
        start = len(ctl.decisions)
        ctl.submit(VmSpec(name="big", memory_bytes=4 * MiB))
        ctl.submit(VmSpec(name="small", memory_bytes=MiB))
        decisions = ctl.drain()
        # big fails and retries to the TAIL, so the later small request
        # is decided (admitted) first; big's eviction comes after.
        assert [d.vm for d in decisions] == ["small", "big"]
        assert decisions[0].admitted
        assert not decisions[-1].admitted
        assert decisions[-1].reason is RejectReason.RETRIES_EXHAUSTED
        # attempts = initial try + max_retries requeues
        assert decisions[-1].attempts == 2
        assert len(ctl.decisions) == start + 2

    def test_interleaved_submit_drain_stays_fifo(self):
        ctl = _controller()
        ctl.submit(VmSpec(name="a", memory_bytes=MiB))
        first = ctl.drain()
        ctl.submit(VmSpec(name="b", memory_bytes=MiB))
        ctl.submit(VmSpec(name="c", memory_bytes=MiB))
        second = ctl.drain()
        assert [d.vm for d in first] == ["a"]
        assert [d.vm for d in second] == ["b", "c"]
        assert all(d.admitted for d in first + second)
        assert [d.vm for d in ctl.decisions] == ["a", "b", "c"]

    def test_retry_sees_capacity_freed_between_attempts(self):
        """A requeued request is re-tried against the *current* fleet:
        capacity freed after its first failure admits it."""
        ctl = _controller(max_retries=1)
        victims = _fill(ctl)
        host = ctl.fleet.hosts[0]

        class _FreeingScheduler:
            """Evicts a resident VM after the first placement failure,
            so the retry (same drain) finds room."""

            def __init__(self, inner):
                self.inner = inner
                self.failures = 0

            def place(self, fleet, spec):
                try:
                    return self.inner.place(fleet, spec)
                except Exception:
                    if self.failures == 0:
                        self.failures += 1
                        host.remove_vm(victims[0])
                    raise

        ctl.scheduler = _FreeingScheduler(ctl.scheduler)
        assert ctl.submit(VmSpec(name="retry-win", memory_bytes=MiB))
        decisions = ctl.drain()
        assert len(decisions) == 1
        assert decisions[0].admitted and decisions[0].attempts == 2


class TestBackoff:
    """Doubling backoff advances the fleet's simulated clock."""

    def test_backoff_doubles_per_attempt(self):
        backoff_s = 0.002
        ctl = _controller(max_retries=2, backoff_s=backoff_s)
        _fill(ctl)
        clock_before = ctl.fleet.hosts[0].hv.machine.dram.clock
        ctl.submit(VmSpec(name="big", memory_bytes=4 * MiB))
        decision = ctl.drain()[0]
        assert not decision.admitted and decision.attempts == 3
        elapsed = ctl.fleet.hosts[0].hv.machine.dram.clock - clock_before
        # Two backoffs before the final attempt: b*2^0 + b*2^1 = 3b.
        assert elapsed == pytest.approx(backoff_s * 3, rel=1e-6)

    def test_zero_retries_never_backs_off(self):
        ctl = _controller(max_retries=0, backoff_s=0.5)
        _fill(ctl)
        clock_before = ctl.fleet.hosts[0].hv.machine.dram.clock
        ctl.submit(VmSpec(name="big", memory_bytes=4 * MiB))
        decision = ctl.drain()[0]
        assert not decision.admitted and decision.attempts == 1
        assert ctl.fleet.hosts[0].hv.machine.dram.clock == clock_before

    def test_stall_advances_all_hosts(self):
        ctl = _controller(hosts=2)
        before = [h.hv.machine.dram.clock for h in ctl.fleet.hosts]
        ctl.stall(0.25)
        for host, b in zip(ctl.fleet.hosts, before):
            assert host.hv.machine.dram.clock == pytest.approx(b + 0.25)
        with pytest.raises(HvError):
            ctl.stall(-1.0)


class TestEvictionRestoresCapacity:
    """Fleet-side eviction makes rejected requests admissible again."""

    def test_remove_vm_then_resubmit_admits(self):
        ctl = _controller(max_retries=0)
        admitted = _fill(ctl)
        # Fleet is full: the same spec bounces with a typed shortfall.
        ctl.submit(VmSpec(name="again", memory_bytes=MiB))
        rejected = ctl.drain()[0]
        assert not rejected.admitted
        assert rejected.reason is RejectReason.RETRIES_EXHAUSTED
        assert rejected.requested_groups is not None
        # Evict one resident; the resubmission must now land.
        ctl.fleet.hosts[0].remove_vm(admitted[0])
        ctl.submit(VmSpec(name="again", memory_bytes=MiB))
        final = ctl.drain()[0]
        assert final.admitted and final.host_id == 0

    def test_acceptance_accounting(self):
        ctl = _controller(max_retries=0)
        admitted = _fill(ctl)
        total = len(admitted) + 1  # the fill's final rejection
        assert ctl.acceptance_rate == pytest.approx(len(admitted) / total)
        assert ctl.rejected_by_reason() == {"retries-exhausted": 1}
