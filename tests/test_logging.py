"""Tests for library logging integration."""

import logging

import pytest

from repro.core import SilozHypervisor
from repro.hv import Machine, VmSpec
from repro.hv.mce import MceHandler
from repro.errors import UncorrectableError
from repro.log import enable_console_logging, get_logger
from repro.units import MiB


class TestLoggers:
    def test_namespace(self):
        assert get_logger("core.siloz").name == "repro.core.siloz"

    def test_root_has_null_handler(self):
        root = logging.getLogger("repro")
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)

    def test_enable_console_idempotent(self):
        enable_console_logging()
        enable_console_logging(logging.DEBUG)
        root = logging.getLogger("repro")
        streams = [
            h
            for h in root.handlers
            if isinstance(h, logging.StreamHandler)
            and not isinstance(h, logging.NullHandler)
        ]
        assert len(streams) == 1
        assert root.level == logging.DEBUG


class TestEvents:
    def test_boot_and_placement_logged(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro"):
            hv = SilozHypervisor.boot(Machine.small(seed=81))
            hv.create_vm(VmSpec(name="tenant", memory_bytes=2 * MiB))
        messages = " ".join(r.message for r in caplog.records)
        assert "provisioned" in messages
        assert "VM tenant placed" in messages

    def test_mce_logged_as_warning(self, caplog):
        hv = SilozHypervisor.boot(Machine.small(seed=82))
        vm = hv.create_vm(VmSpec(name="t", memory_bytes=2 * MiB))
        mce = MceHandler(hv)
        with caplog.at_level(logging.WARNING, logger="repro"):
            mce.handle(UncorrectableError("uc", address=vm.translate(0x0)))
        assert any(
            r.levelno == logging.WARNING and "uncorrectable" in r.message
            for r in caplog.records
        )
