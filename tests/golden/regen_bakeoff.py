#!/usr/bin/env python3
"""Regenerate the golden bake-off digests in ``tests/golden/``.

Run from the repo root after any change that *intentionally* moves a
mitigation's behaviour (placement, audit filtering, attack outcome,
capacity accounting, report fields)::

    PYTHONPATH=src python tests/golden/regen_bakeoff.py

One fixture per registered mitigation (``bakeoff_<name>.json``), each
pinning that mitigation's :meth:`BakeoffReport.mitigation_digest` for
the canonical scenario below, plus the headline numbers so a diff of
the fixture shows *what* moved, not just that something did.  Digests
are backend- and worker-count-independent, so regenerating on any
machine yields identical fixtures.
"""

from __future__ import annotations

import json
import pathlib
import sys

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent

#: The pinned scenario: small fleet, the seed where the unmitigated
#: baseline demonstrably corrupts a victim VM at the default budget.
SCENARIO = dict(hosts=2, vms=4, seed=7, budget=150)


def compute_reports():
    from repro.mitigations.bakeoff import BakeoffConfig, run_bakeoff

    # Vectorized purely for speed: the digest is backend-independent.
    return run_bakeoff(BakeoffConfig(backend="vectorized", **SCENARIO))


def main() -> int:
    report = compute_reports()
    for entry in report.entries:
        name = entry["mitigation"]
        fixture = {
            "mitigation": name,
            "scenario": SCENARIO,
            "digest": report.mitigation_digest(name),
            "containment_rate": entry["containment"]["containment_rate"],
            "victim_flips": entry["containment"]["victim_flips"],
            "escaped_flips": entry["containment"]["escaped_flips"],
            "loss_fraction": entry["capacity"].get("loss_fraction", 0.0),
            "fleet_digest": entry["fleet"]["digest"],
        }
        path = GOLDEN_DIR / f"bakeoff_{name}.json"
        path.write_text(json.dumps(fixture, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path.relative_to(GOLDEN_DIR.parents[1])}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
