"""Tests for guest IO paths: passthrough IOMMU (SR-IOV) and virtio.

Paper §5.1: virtio DMAs are host-mediated (rate-limitable); secure
passthrough requires the IOMMU to confine device DMA to the guest's
subarray groups and IOMMU tables to be protected like EPTs.
"""

import pytest

from repro.core import SilozHypervisor
from repro.core.groups import ept_rows
from repro.errors import HvError
from repro.hv import BaselineHypervisor, Machine, VmSpec
from repro.hv.iommu import IommuDomain, IommuFault, PassthroughDevice
from repro.hv.virtio import (
    DmaBudgetExceeded,
    DmaRateLimiter,
    VirtioDevice,
    Virtqueue,
)
from repro.units import KiB, MiB


@pytest.fixture
def siloz():
    return SilozHypervisor.boot(Machine.small(seed=31))


@pytest.fixture
def vm(siloz):
    return siloz.create_vm(VmSpec(name="tenant", memory_bytes=2 * MiB))


class TestIommuDomain:
    def test_map_translate(self, siloz, vm):
        device = siloz.attach_passthrough_device("tenant", "vf0")
        # IOVA 0 maps to the VM's first backing page.
        assert device.domain.translate(0) == vm.backing[0].start

    def test_unmapped_iova_faults(self, siloz, vm):
        device = siloz.attach_passthrough_device("tenant", "vf0")
        with pytest.raises(IommuFault):
            device.domain.translate(1 << 40)

    def test_dma_read_write_roundtrip(self, siloz, vm):
        device = siloz.attach_passthrough_device("tenant", "vf0")
        device.dma_write(0x3000, b"packet data")
        assert device.dma_read(0x3000, 11) == b"packet data"
        # The guest sees the DMA'd data at the same GPA (identity IOVA).
        assert vm.read(0x3000, 11) == b"packet data"
        assert device.stats.reads == 1 and device.stats.writes == 1

    def test_domain_confined_to_vm_backing(self, siloz, vm):
        """§5.1 requirement (1): the device cannot reach beyond the VM's
        own memory, no matter the IOVA."""
        device = siloz.attach_passthrough_device("tenant", "vf0")
        other = siloz.create_vm(VmSpec(name="other", memory_bytes=2 * MiB))
        limit = sum(r.size for r in vm.backing)
        for iova in range(0, limit, 64 * KiB):
            hpa = device.domain.translate(iova)
            assert vm.owns_hpa(hpa)
            assert not other.owns_hpa(hpa)
        with pytest.raises(IommuFault):
            device.domain.translate(limit)

    def test_iommu_tables_in_protected_row_group(self, siloz, vm):
        """§5.1 requirement (2): IOMMU page tables share the EPT row
        group's guard protection under Siloz."""
        device = siloz.attach_passthrough_device("tenant", "vf0")
        rows = ept_rows(siloz.config, siloz.machine.geom)
        for page in device.domain.table_pages:
            media = siloz.machine.mapping.decode(page)
            assert media.row in rows

    def test_dma_hammer_contained(self, siloz, vm):
        """DMA-based hammering (GuardION-style) stays inside the VM's
        subarray groups because the IOMMU bounds the reachable rows."""
        device = siloz.attach_passthrough_device("tenant", "vf0")
        geom = siloz.machine.geom
        flips = device.dma_hammer(0x0, activations=4000)
        groups = {g for _, g in vm.reserved_groups}
        for flip in siloz.machine.dram.flips_log:
            assert flip.row // geom.rows_per_subarray in groups
        assert device.stats.hammer_activations == 4000

    def test_attach_to_shutdown_vm_rejected(self, siloz, vm):
        siloz.destroy_vm("tenant")
        with pytest.raises(HvError):
            siloz.attach_passthrough_device("tenant", "vf0")

    def test_destroy_vm_frees_domain_pages(self, siloz, vm):
        device = siloz.attach_passthrough_device("tenant", "vf0")
        pages = list(device.domain.table_pages)
        assert pages
        siloz.destroy_vm("tenant")
        # Pages are back in the EPT node's pool: a new VM + device can
        # re-allocate them.
        vm2 = siloz.create_vm(VmSpec(name="t2", memory_bytes=2 * MiB))
        dev2 = siloz.attach_passthrough_device("t2", "vf0")
        assert set(dev2.domain.table_pages) & set(pages)

    def test_baseline_also_supports_passthrough(self):
        hv = BaselineHypervisor(Machine.small(seed=32), backing_page_bytes=64 * KiB)
        vm = hv.create_vm(VmSpec(name="v", memory_bytes=1 * MiB))
        device = hv.attach_passthrough_device("v", "vf0")
        device.dma_write(0, b"x")
        assert vm.read(0, 1) == b"x"


class TestDmaRateLimiter:
    def test_budget_enforced(self):
        limiter = DmaRateLimiter(ops_per_window=2)
        limiter.consume()
        limiter.consume()
        with pytest.raises(DmaBudgetExceeded):
            limiter.consume()
        assert limiter.refused == 1

    def test_window_refills(self):
        limiter = DmaRateLimiter(ops_per_window=1)
        limiter.consume()
        limiter.new_window()
        limiter.consume()

    def test_rejects_bad_budget(self):
        with pytest.raises(HvError):
            DmaRateLimiter(ops_per_window=0)


class TestVirtio:
    RING_GPA = 0x10000
    BUF_OUT = 0x20000
    BUF_IN = 0x30000

    def _setup(self, vm, limiter=None):
        queue = Virtqueue(vm, self.RING_GPA, size=8)
        device = VirtioDevice(vm, queue, limiter=limiter)
        return queue, device

    def test_loopback_roundtrip(self, siloz, vm):
        queue, device = self._setup(vm)
        vm.write(self.BUF_OUT, b"hello virtio")
        queue.guest_post(0, self.BUF_OUT, 12, device_writes=False)
        queue.guest_post(1, self.BUF_IN, 12, device_writes=True)
        assert device.process() == 2
        assert vm.read(self.BUF_IN, 12) == b"hello virtio"[::-1]
        assert queue.used == [(0, 0), (1, 12)]

    def test_descriptor_ring_lives_in_guest_memory(self, siloz, vm):
        queue, _ = self._setup(vm)
        queue.guest_post(0, self.BUF_OUT, 4, device_writes=False)
        hpa = vm.translate(self.RING_GPA)
        assert vm.owns_hpa(hpa)

    def test_host_performs_the_dma(self, siloz, vm):
        """The guest only writes descriptors; transfers happen in host
        code and are counted there (mediation, §5.1)."""
        queue, device = self._setup(vm)
        vm.write(self.BUF_OUT, b"abcd")
        queue.guest_post(0, self.BUF_OUT, 4, device_writes=False)
        assert device.dma_ops == 0
        device.process()
        assert device.dma_ops == 1

    def test_rate_limiter_stops_dma_storm(self, siloz, vm):
        """The §5.1 mitigation: the host can throttle exit-driven DMA."""
        queue, device = self._setup(vm, limiter=DmaRateLimiter(ops_per_window=3))
        for i in range(6):
            queue.guest_post(i, self.BUF_OUT + i * 64, 16, device_writes=False)
        with pytest.raises(DmaBudgetExceeded):
            device.process()
        assert device.dma_ops == 3
        device.limiter.new_window()
        device.process()  # remaining descriptors drain next window

    def test_bad_descriptor_index_rejected(self, siloz, vm):
        queue, _ = self._setup(vm)
        with pytest.raises(HvError):
            queue.guest_post(99, self.BUF_OUT, 4, device_writes=False)

    def test_mediated_region_buffers_rejected(self, siloz, vm):
        queue, device = self._setup(vm)
        mmio = next(r for r in vm.regions if r.name == "mmio")
        queue.guest_post(0, mmio.gpa, 4, device_writes=False)
        with pytest.raises(HvError):
            device.process()

    def test_zero_size_queue_rejected(self, siloz, vm):
        with pytest.raises(HvError):
            Virtqueue(vm, self.RING_GPA, size=0)
