"""Smoke tests: every example in examples/ must run clean.

Examples are user-facing documentation; a broken one is a broken
promise.  Each runs in-process (import + main()) with output captured.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))

#: Examples too slow for every test run; still covered by CI-style full
#: runs (and they only compose already-tested pieces).
SLOW = {"attack_containment", "subarray_sensitivity"}


def _load(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_discovered():
    assert len(EXAMPLES) >= 7


@pytest.mark.parametrize("name", [e for e in EXAMPLES if e not in SLOW])
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{name} printed nothing"


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(SLOW))
def test_slow_example_runs(name, capsys):
    module = _load(name)
    module.main()
    assert capsys.readouterr().out.strip()
