"""Tests for the §5.3 vmstat update-skipping optimisation."""

import pytest

from repro.core import SilozHypervisor
from repro.errors import MmError
from repro.hv import Machine, VmSpec
from repro.mm.vmstat import VmStatReporter
from repro.units import MiB


@pytest.fixture
def hv():
    return SilozHypervisor.boot(Machine.small(seed=41))


class TestReporter:
    def test_refresh_scans_all_dynamic_nodes(self, hv):
        hv.vmstat.refresh()
        assert hv.vmstat.nodes_scanned == len(hv.topology)

    def test_static_nodes_skipped(self, hv):
        node = hv.topology.nodes[2].node_id
        hv.vmstat.mark_static(node)
        hv.vmstat.refresh()
        assert hv.vmstat.nodes_scanned == len(hv.topology) - 1

    def test_static_stat_still_readable(self, hv):
        node = hv.topology.nodes[2]
        hv.vmstat.mark_static(node.node_id)
        stat = hv.vmstat.stat(node.node_id)
        assert stat.free_bytes == node.free_bytes

    def test_unknown_node_rejected(self, hv):
        with pytest.raises(MmError):
            hv.vmstat.mark_static(999)

    def test_dynamic_again_rescans(self, hv):
        node = hv.topology.nodes[2].node_id
        hv.vmstat.mark_static(node)
        hv.vmstat.mark_dynamic(node)
        hv.vmstat.refresh()
        assert hv.vmstat.nodes_scanned == len(hv.topology)


class TestSilozIntegration:
    def test_vm_boot_freezes_its_nodes(self, hv):
        vm = hv.create_vm(VmSpec(name="a", memory_bytes=2 * MiB))
        assert set(vm.node_ids) <= hv.vmstat.static_nodes
        before = hv.vmstat.nodes_scanned
        hv.vmstat.refresh()
        scanned = hv.vmstat.nodes_scanned - before
        assert scanned == len(hv.topology) - len(vm.node_ids)

    def test_frozen_stats_are_accurate(self, hv):
        """The optimisation is sound: a booted guest node's stats really
        don't change while the VM runs."""
        vm = hv.create_vm(VmSpec(name="a", memory_bytes=2 * MiB))
        node_id = vm.node_ids[0]
        cached = hv.vmstat.stat(node_id).free_bytes
        vm.write(0x0, b"activity")  # guest activity allocates nothing
        assert hv.topology.node(node_id).free_bytes == cached

    def test_shutdown_unfreezes(self, hv):
        vm = hv.create_vm(VmSpec(name="a", memory_bytes=2 * MiB))
        hv.destroy_vm("a")
        assert not (set(vm.node_ids) & hv.vmstat.static_nodes)
        hv.vmstat.refresh()
        # The fresh scan sees the freed memory.
        node = hv.topology.node(vm.node_ids[0])
        assert hv.vmstat.stat(node.node_id).free_bytes == node.free_bytes
