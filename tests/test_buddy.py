"""Unit tests for the buddy allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.mapping import AddressRange
from repro.errors import MmError, OutOfMemoryError
from repro.mm.buddy import MAX_BLOCK, MIN_BLOCK, BuddyAllocator, order_of
from repro.units import GiB, KiB, MiB, PAGE_2M, PAGE_4K


def make(size=16 * MiB, base=0):
    return BuddyAllocator([AddressRange(base, base + size)])


class TestOrderOf:
    def test_page(self):
        assert order_of(PAGE_4K) == 0
        assert order_of(1) == 0

    def test_two_pages(self):
        assert order_of(2 * PAGE_4K) == 1
        assert order_of(PAGE_4K + 1) == 1

    def test_2m(self):
        assert order_of(PAGE_2M) == 9

    def test_1g(self):
        assert order_of(GiB) == 18

    def test_rejects_oversize(self):
        with pytest.raises(MmError):
            order_of(MAX_BLOCK + 1)

    def test_rejects_nonpositive(self):
        with pytest.raises(MmError):
            order_of(0)


class TestBasicAllocation:
    def test_total_and_free(self):
        alloc = make()
        assert alloc.total_bytes == 16 * MiB
        assert alloc.free_bytes == 16 * MiB

    def test_alloc_reduces_free(self):
        alloc = make()
        alloc.alloc(0)
        assert alloc.free_bytes == 16 * MiB - PAGE_4K
        assert alloc.allocated_bytes == PAGE_4K

    def test_alloc_is_lowest_address_first(self):
        alloc = make(base=1 * MiB)
        assert alloc.alloc(0) == 1 * MiB

    def test_alloc_bytes_rounds_up(self):
        alloc = make()
        a = alloc.alloc_bytes(5 * KiB)  # order 1 = 8 KiB
        b = alloc.alloc_bytes(PAGE_4K)
        assert b == a + 8 * KiB

    def test_blocks_naturally_aligned(self):
        alloc = make()
        addr = alloc.alloc_bytes(PAGE_2M)
        assert addr % PAGE_2M == 0

    def test_oom(self):
        alloc = make(size=64 * KiB)
        with pytest.raises(OutOfMemoryError):
            alloc.alloc_bytes(128 * KiB)

    def test_bad_order_rejected(self):
        with pytest.raises(MmError):
            make().alloc(-1)

    def test_unaligned_range_rejected(self):
        with pytest.raises(MmError):
            BuddyAllocator([AddressRange(100, 5000)])

    def test_empty_ranges_rejected(self):
        with pytest.raises(MmError):
            BuddyAllocator([])


class TestFreeAndCoalesce:
    def test_free_restores(self):
        alloc = make()
        addr = alloc.alloc_bytes(PAGE_2M)
        alloc.free(addr)
        assert alloc.free_bytes == 16 * MiB

    def test_double_free_rejected(self):
        alloc = make()
        addr = alloc.alloc(0)
        alloc.free(addr)
        with pytest.raises(MmError):
            alloc.free(addr)

    def test_free_unallocated_rejected(self):
        with pytest.raises(MmError):
            make().free(0x5000)

    def test_coalescing_rebuilds_large_blocks(self):
        alloc = make(size=2 * PAGE_2M)
        pages = [alloc.alloc(0) for _ in range(512)]  # a full 2 MiB of 4K
        with_frag = alloc.alloc_bytes(PAGE_2M)  # second 2 MiB still whole
        alloc.free(with_frag)
        for p in pages:
            alloc.free(p)
        # Everything coalesced: two 2 MiB allocations succeed again.
        a = alloc.alloc_bytes(PAGE_2M)
        b = alloc.alloc_bytes(PAGE_2M)
        assert {a, b} == {0, PAGE_2M}

    @given(st.lists(st.integers(0, 4), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_alloc_free_conserves_memory(self, orders):
        alloc = make(size=4 * MiB)
        addrs = []
        for order in orders:
            try:
                addrs.append(alloc.alloc(order))
            except OutOfMemoryError:
                break
        expected = 4 * MiB - sum(
            MIN_BLOCK << o for o, _ in zip(orders, addrs)
        )
        assert alloc.free_bytes == expected
        for addr in addrs:
            alloc.free(addr)
        assert alloc.free_bytes == 4 * MiB


class TestMultiRange:
    """Logical nodes can own several disjoint subarray-group ranges."""

    def test_allocates_across_ranges(self):
        alloc = BuddyAllocator(
            [AddressRange(0, 1 * MiB), AddressRange(8 * MiB, 9 * MiB)]
        )
        assert alloc.total_bytes == 2 * MiB
        seen = {alloc.alloc_bytes(1 * MiB) for _ in range(2)}
        assert seen == {0, 8 * MiB}

    def test_contains(self):
        alloc = BuddyAllocator(
            [AddressRange(0, 1 * MiB), AddressRange(8 * MiB, 9 * MiB)]
        )
        assert alloc.contains(0) and alloc.contains(8 * MiB)
        assert not alloc.contains(4 * MiB)

    def test_non_power_of_two_range(self):
        # 1.5 GiB-style ranges must seed cleanly (3 x 512 MiB etc.).
        alloc = BuddyAllocator([AddressRange(0, 3 * MiB // 2)])
        assert alloc.free_bytes == 3 * MiB // 2
        alloc.alloc_bytes(1 * MiB)
        alloc.alloc_bytes(512 * KiB)
        with pytest.raises(OutOfMemoryError):
            alloc.alloc(0)


class TestReserveRange:
    def test_reserve_excludes_pages(self):
        alloc = make(size=1 * MiB)
        target = AddressRange(64 * KiB, 128 * KiB)
        alloc.reserve_range(target)
        assert alloc.free_bytes == 1 * MiB - 64 * KiB
        # Every subsequent allocation avoids the reserved range.
        addrs = [alloc.alloc(0) for _ in range((1 * MiB - 64 * KiB) // PAGE_4K)]
        assert all(not (target.start <= a < target.end) for a in addrs)

    def test_reserve_unaligned_rejected(self):
        with pytest.raises(MmError):
            make().reserve_range(AddressRange(100, 4196))

    def test_reserve_allocated_range_fails(self):
        alloc = make(size=64 * KiB)
        addr = alloc.alloc(0)
        with pytest.raises(MmError):
            alloc.reserve_range(AddressRange(addr, addr + PAGE_4K))

    def test_reserve_whole_pool(self):
        alloc = make(size=256 * KiB)
        alloc.reserve_range(AddressRange(0, 256 * KiB))
        assert alloc.free_bytes == 0
        with pytest.raises(OutOfMemoryError):
            alloc.alloc(0)

    def test_reserve_single_page(self):
        alloc = make(size=256 * KiB)
        alloc.reserve_range(AddressRange(PAGE_4K, 2 * PAGE_4K))
        assert alloc.free_bytes == 256 * KiB - PAGE_4K


class TestQuarantine:
    def test_quarantine_tolerates_allocated_blocks(self):
        alloc = make(size=1 * MiB)
        addr = alloc.alloc_bytes(64 * KiB)  # lowest address: inside target
        target = AddressRange(0, 128 * KiB)
        moved = alloc.quarantine_range(target)
        assert moved == 128 * KiB - 64 * KiB  # only the free half moved
        assert alloc.quarantined_bytes == 64 * KiB
        assert alloc.allocated_blocks_within(target) == [(addr, 64 * KiB)]
        # Nothing new lands in the quarantined range.
        others = [alloc.alloc(0) for _ in range(16)]
        assert all(a not in target for a in others)

    def test_release_restores_and_coalesces(self):
        alloc = make(size=1 * MiB)
        before = alloc.free_bytes
        alloc.quarantine_range(AddressRange(64 * KiB, 192 * KiB))
        assert alloc.free_bytes == before - 128 * KiB
        released = alloc.release_quarantine()
        assert released == 128 * KiB
        assert alloc.free_bytes == before
        assert alloc.quarantined_bytes == 0
        # Coalescing happened: the full pool is allocatable as one block.
        assert alloc.alloc_bytes(1 * MiB) == 0

    def test_release_scoped_to_target(self):
        alloc = make(size=1 * MiB)
        alloc.quarantine_range(AddressRange(0, 64 * KiB))
        alloc.quarantine_range(AddressRange(128 * KiB, 192 * KiB))
        released = alloc.release_quarantine(AddressRange(0, 64 * KiB))
        assert released == 64 * KiB
        assert alloc.quarantined_bytes == 64 * KiB

    def test_finalize_retires_for_good(self):
        alloc = make(size=1 * MiB)
        target = AddressRange(0, 64 * KiB)
        alloc.quarantine_range(target)
        done = alloc.finalize_quarantine(target)
        assert done == 64 * KiB
        assert alloc.retired_bytes == 64 * KiB
        assert alloc.quarantined_bytes == 0
        assert alloc.free_bytes == 1 * MiB - 64 * KiB

    def test_unaligned_quarantine_rejected(self):
        with pytest.raises(MmError):
            make().quarantine_range(AddressRange(100, 4196))


class TestRetire:
    def test_retire_allocated_block(self):
        alloc = make(size=1 * MiB)
        addr = alloc.alloc_bytes(64 * KiB)
        size = alloc.retire(addr)
        assert size == 64 * KiB
        assert alloc.retired_bytes == 64 * KiB
        # The frames never come back.
        assert alloc.free_bytes == 1 * MiB - 64 * KiB
        with pytest.raises(MmError):
            alloc.free(addr)

    def test_retire_unallocated_rejected(self):
        with pytest.raises(MmError):
            make().retire(0x3000)
