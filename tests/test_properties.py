"""Property-based and stateful tests on core data structures.

Hypothesis drives random operation sequences and inputs against the
invariants everything else relies on: buddy-allocator conservation and
non-overlap, mapping bijectivity on random geometries, EPT map/translate
consistency, and transform involutions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.dram.geometry import DRAMGeometry
from repro.dram.mapping import AddressRange, SkylakeMapping
from repro.errors import OutOfMemoryError
from repro.mm.buddy import MIN_BLOCK, BuddyAllocator
from repro.units import CACHE_LINE, MiB


class BuddyMachine(RuleBasedStateMachine):
    """Random alloc/free sequences must conserve memory, never hand out
    overlapping blocks, and always coalesce back to a full pool."""

    POOL = 4 * MiB

    def __init__(self):
        super().__init__()
        self.allocator = BuddyAllocator([AddressRange(0, self.POOL)])
        self.live: dict[int, int] = {}  # addr -> size

    @rule(order=st.integers(min_value=0, max_value=6))
    def alloc(self, order):
        try:
            addr = self.allocator.alloc(order)
        except OutOfMemoryError:
            return
        size = MIN_BLOCK << order
        # Non-overlap with every live block.
        for other, osize in self.live.items():
            assert addr + size <= other or other + osize <= addr
        assert addr % size == 0  # natural alignment
        assert 0 <= addr and addr + size <= self.POOL
        self.live[addr] = size

    @rule(data=st.data())
    @precondition(lambda self: self.live)
    def free(self, data):
        addr = data.draw(st.sampled_from(sorted(self.live)))
        self.allocator.free(addr)
        del self.live[addr]

    @invariant()
    def memory_conserved(self):
        used = sum(self.live.values())
        assert self.allocator.free_bytes == self.POOL - used
        assert self.allocator.allocated_bytes == used

    def teardown(self):
        for addr in list(self.live):
            self.allocator.free(addr)
        # Full coalescing: the whole pool is one piece again.
        assert self.allocator.free_bytes == self.POOL
        got = self.allocator.alloc_bytes(2 * MiB)
        self.allocator.free(got)


TestBuddyStateful = BuddyMachine.TestCase
TestBuddyStateful.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)


geometries = st.sampled_from(
    [
        DRAMGeometry.small(),
        DRAMGeometry.small(sockets=2),
        DRAMGeometry.small(rows_per_bank=512, rows_per_subarray=64),
        DRAMGeometry.small(banks_per_rank=2, channels_per_socket=4),
    ]
)


class TestMappingProperties:
    @given(geom=geometries, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_decode_encode_bijective(self, geom, data):
        mapping = SkylakeMapping.for_small_geometry(geom)
        hpa = data.draw(st.integers(0, geom.total_bytes - 1))
        media = mapping.decode(hpa)
        assert mapping.encode(media) == hpa

    @given(geom=geometries, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_line_stays_together(self, geom, data):
        """All 64 bytes of a cache line live in one bank and row."""
        mapping = SkylakeMapping.for_small_geometry(geom)
        line = data.draw(st.integers(0, geom.total_bytes // CACHE_LINE - 1))
        base = mapping.decode(line * CACHE_LINE)
        last = mapping.decode(line * CACHE_LINE + CACHE_LINE - 1)
        assert base.same_bank(last)
        assert base.row == last.row

    @given(geom=geometries, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_group_ranges_partition(self, geom, data):
        """Every byte belongs to exactly one subarray group's ranges."""
        mapping = SkylakeMapping.for_small_geometry(geom)
        hpa = data.draw(st.integers(0, geom.socket_bytes - 1))
        socket, group = mapping.subarray_group_of_hpa(hpa)
        owners = [
            g
            for g in range(geom.groups_per_socket)
            if any(hpa in r for r in mapping.subarray_group_ranges(socket, g))
        ]
        assert owners == [group]

    @given(geom=geometries, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_row_group_spans_all_banks(self, geom, data):
        mapping = SkylakeMapping.for_small_geometry(geom)
        row = data.draw(st.integers(0, geom.rows_per_bank - 1))
        (r,) = mapping.row_group_ranges(0, row)
        banks = {
            mapping.decode(a).socket_bank_index(geom)
            for a in range(r.start, r.end, CACHE_LINE)
        }
        assert banks == set(range(geom.banks_per_socket))


class TestEptProperties:
    @given(
        pages=st.lists(
            st.integers(0, 255), min_size=1, max_size=24, unique=True
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_map_translate_consistent(self, pages):
        """Any set of 4 KiB mappings translates back exactly, and
        unmapped neighbours still fault."""
        from repro.dram.module import SimulatedDram
        from repro.errors import EptViolation
        from repro.units import PAGE_4K

        geom = DRAMGeometry.small(rows_per_bank=512, rows_per_subarray=64)
        dram = SimulatedDram(geom, trr_config=None)
        next_page = iter(range(0, 4 * 2**20, PAGE_4K))
        from repro.ept.table import ExtendedPageTable

        ept = ExtendedPageTable(dram, lambda: next(next_page))
        base = 8 * 2**20
        for page in pages:
            ept.map(page * PAGE_4K, base + page * PAGE_4K, PAGE_4K)
        for page in pages:
            gpa = page * PAGE_4K
            assert ept.translate(gpa) == base + gpa
        missing = next(i for i in range(300) if i not in pages)
        with pytest.raises(EptViolation):
            ept.translate(missing * PAGE_4K)
