"""Tests for the multi-host fleet simulator (``repro.fleet``)."""

import pytest

from repro.core import SilozHypervisor
from repro.errors import FleetError, IsolationViolation, PlacementError
from repro.hv import BaselineHypervisor, Machine, VmSpec
from repro.units import KiB, MiB
from repro.fleet import (
    AdmissionController,
    CampaignConfig,
    Fleet,
    FleetReport,
    Host,
    HostSpec,
    HostTask,
    MigrationError,
    RejectReason,
    derive_host_seed,
    evacuate_degraded,
    generate_arrival_trace,
    host_fits,
    make_scheduler,
    migrate_vm,
    region_extents,
    run_campaign,
    run_host_task,
)


def boot_fleet(n=2, **kw):
    return Fleet.boot(n, **kw)


class TestCapacitySnapshot:
    """Satellite: ``Hypervisor.capacity()`` read-only snapshot."""

    def test_boot_state(self):
        hv = SilozHypervisor.boot(Machine.small())
        cap = hv.capacity()
        assert cap.total_guest_nodes > 0
        assert len(cap.free_guest_node_ids) == cap.total_guest_nodes
        assert cap.vm_count == 0
        assert cap.guard_row_bytes > 0
        assert cap.offlined_bytes >= cap.guard_row_bytes
        assert cap.free_guest_bytes > 0
        assert cap.backing_page_bytes == hv.backing_page_bytes

    def test_placement_shrinks_free_nodes(self):
        hv = SilozHypervisor.boot(Machine.small())
        before = hv.capacity()
        hv.create_vm(VmSpec(name="a", memory_bytes=1 * MiB))
        after = hv.capacity()
        assert after.vm_count == 1
        assert len(after.free_guest_node_ids) < len(before.free_guest_node_ids)
        assert after.free_guest_bytes < before.free_guest_bytes

    def test_teardown_restores_capacity(self):
        hv = SilozHypervisor.boot(Machine.small())
        before = hv.capacity()
        hv.create_vm(VmSpec(name="a", memory_bytes=1 * MiB))
        hv.destroy_vm("a")
        hv.release_reservation("a")
        after = hv.capacity()
        assert after.free_guest_node_ids == before.free_guest_node_ids
        assert after.free_guest_bytes == before.free_guest_bytes

    def test_snapshot_is_read_only_and_cheap(self):
        hv = SilozHypervisor.boot(Machine.small())
        clock = hv.machine.dram.clock
        cap = hv.capacity()
        assert hv.machine.dram.clock == clock  # no DRAM traffic
        with pytest.raises(Exception):
            cap.vm_count = 5  # frozen

    def test_baseline_hypervisor_has_no_guards(self):
        hv = BaselineHypervisor(Machine.small(), backing_page_bytes=64 * KiB)
        cap = hv.capacity()
        assert cap.guard_row_bytes == 0
        assert cap.total_guest_nodes == 0


class TestTypedPlacementError:
    """Satellite: capacity exhaustion raises a *typed* PlacementError."""

    def test_capacity_error_carries_group_counts(self):
        hv = SilozHypervisor.boot(Machine.small())
        free = hv.capacity().free_guest_bytes
        with pytest.raises(PlacementError) as err:
            hv.create_vm(VmSpec(name="huge", memory_bytes=free + 4 * MiB))
        assert err.value.is_capacity
        assert err.value.requested_groups >= 1
        assert err.value.available_groups >= 0
        assert err.value.requested_groups > err.value.available_groups

    def test_non_capacity_errors_are_distinguishable(self):
        from repro.core import SilozConfig

        machine = Machine.small()
        with pytest.raises(PlacementError) as err:
            SilozHypervisor(
                machine,
                SilozConfig.scaled_for(machine.geom),
                placement_policy="bogus",
            )
        assert not err.value.is_capacity
        assert err.value.requested_groups is None


class TestSeedDerivation:
    """Satellite: per-host seeds are stable under ``--workers`` changes."""

    def test_pure_function_of_fleet_seed_and_host_id(self):
        assert derive_host_seed(7, 3) == derive_host_seed(7, 3)
        assert derive_host_seed(7, 3) != derive_host_seed(7, 4)
        assert derive_host_seed(7, 3) != derive_host_seed(8, 3)

    def test_stable_across_interpreter_runs(self):
        """Regression: blake2b, not Python's salted ``hash`` — these
        constants must never change or old campaigns stop replaying."""
        assert derive_host_seed(0, 0) == 0x6A1A6C0078F57D11
        assert derive_host_seed(0, 0) == derive_host_seed(0, 0)
        assert derive_host_seed(0, 0) < 2**63

    def test_fleet_boot_uses_derived_seeds(self):
        fleet = boot_fleet(3, seed=42)
        for i, host in enumerate(fleet):
            assert host.spec.seed == derive_host_seed(42, i)

    def test_independent_of_pool_order(self):
        """Seeds come from host ids alone: deriving them in any order,
        any subset, any process yields the same values."""
        forward = [derive_host_seed(1, i) for i in range(4)]
        backward = [derive_host_seed(1, i) for i in reversed(range(4))]
        assert forward == list(reversed(backward))
        assert len(set(forward)) == 4


class TestSchedulers:
    def test_best_fit_packs(self):
        fleet = boot_fleet(2)
        sched = make_scheduler("best-fit")
        h1 = sched.place(fleet, VmSpec(name="a", memory_bytes=1 * MiB))
        h2 = sched.place(fleet, VmSpec(name="b", memory_bytes=1 * MiB))
        assert h1.host_id == h2.host_id

    def test_spread_balances(self):
        fleet = boot_fleet(2)
        sched = make_scheduler("spread")
        h1 = sched.place(fleet, VmSpec(name="a", memory_bytes=1 * MiB))
        h2 = sched.place(fleet, VmSpec(name="b", memory_bytes=1 * MiB))
        assert h1.host_id != h2.host_id

    def test_first_fit_prefers_lowest_id(self):
        fleet = boot_fleet(3)
        sched = make_scheduler("first-fit")
        for name in ("a", "b"):
            host = sched.place(fleet, VmSpec(name=name, memory_bytes=1 * MiB))
            assert host.host_id == 0

    def test_fleet_exhaustion_raises_typed_error(self):
        fleet = boot_fleet(1)
        sched = make_scheduler("first-fit")
        free = fleet.host(0).capacity().free_guest_bytes
        with pytest.raises(PlacementError) as err:
            sched.place(fleet, VmSpec(name="huge", memory_bytes=free + 4 * MiB))
        assert err.value.is_capacity

    def test_exclude_is_honoured(self):
        fleet = boot_fleet(2)
        sched = make_scheduler("first-fit")
        spec = VmSpec(name="a", memory_bytes=1 * MiB)
        ranked = sched.rank(fleet, spec, exclude=(0,))
        assert [h.host_id for h in ranked] == [1]

    def test_misaligned_spec_fits_nowhere(self):
        fleet = boot_fleet(1)
        spec = VmSpec(name="odd", memory_bytes=3 * KiB)
        assert not host_fits(fleet.host(0), spec)

    def test_unknown_policy(self):
        with pytest.raises(FleetError):
            make_scheduler("worst-fit")

    def test_placement_preserves_isolation(self):
        fleet = boot_fleet(2)
        sched = make_scheduler("best-fit")
        for spec in generate_arrival_trace(3, 6):
            try:
                sched.place(fleet, spec)
            except PlacementError as exc:
                assert exc.is_capacity
        fleet.assert_isolation()


class TestAdmission:
    def test_queue_full_backpressure(self):
        fleet = boot_fleet(1)
        ctl = AdmissionController(fleet, make_scheduler("first-fit"), queue_depth=2)
        specs = generate_arrival_trace(0, 3)
        assert ctl.submit(specs[0])
        assert ctl.submit(specs[1])
        assert not ctl.submit(specs[2])  # bounded queue rejects at the door
        rejected = [d for d in ctl.decisions if not d.admitted]
        assert [d.reason for d in rejected] == [RejectReason.QUEUE_FULL]

    def test_invalid_spec_is_typed(self):
        fleet = boot_fleet(1)
        ctl = AdmissionController(fleet, make_scheduler("first-fit"))
        ctl.submit(VmSpec(name="odd", memory_bytes=3 * KiB))
        (decision,) = ctl.drain()
        assert not decision.admitted
        assert decision.reason is RejectReason.INVALID_SPEC

    def test_retries_exhausted_carries_shortfall(self):
        fleet = boot_fleet(1)
        free = fleet.host(0).capacity().free_guest_bytes
        ctl = AdmissionController(
            fleet, make_scheduler("first-fit"), max_retries=2
        )
        ctl.submit(VmSpec(name="huge", memory_bytes=free + 4 * MiB))
        (decision,) = ctl.drain()
        assert not decision.admitted
        assert decision.reason is RejectReason.RETRIES_EXHAUSTED
        assert decision.attempts == 3  # initial try + 2 retries
        assert decision.requested_groups is not None
        assert decision.available_groups is not None

    def test_retry_backoff_advances_simulated_time(self):
        fleet = boot_fleet(1)
        free = fleet.host(0).capacity().free_guest_bytes
        before = fleet.host(0).hv.machine.dram.clock
        ctl = AdmissionController(fleet, make_scheduler("first-fit"), max_retries=1)
        ctl.submit(VmSpec(name="huge", memory_bytes=free + 4 * MiB))
        ctl.drain()
        assert fleet.host(0).hv.machine.dram.clock > before

    def test_acceptance_accounting(self):
        fleet = boot_fleet(2)
        ctl = AdmissionController(fleet, make_scheduler("best-fit"))
        for spec in generate_arrival_trace(0, 4):
            ctl.submit(spec)
        ctl.drain()
        assert ctl.acceptance_rate == 1.0
        ctl.submit(VmSpec(name="odd", memory_bytes=3 * KiB))
        ctl.drain()
        assert 0.0 < ctl.acceptance_rate < 1.0
        assert ctl.rejected_by_reason() == {"invalid-spec": 1}


class TestIsolationInvariant:
    def test_clean_fleet_passes(self):
        fleet = boot_fleet(2)
        make_scheduler("spread").place(fleet, VmSpec(name="a", memory_bytes=1 * MiB))
        fleet.assert_isolation()

    def test_forged_double_reservation_is_caught(self):
        fleet = boot_fleet(1)
        host = fleet.host(0)
        a = host.create_vm(VmSpec(name="a", memory_bytes=1 * MiB))
        b = host.create_vm(VmSpec(name="b", memory_bytes=1 * MiB))
        b.reserved_groups = a.reserved_groups  # simulate a placement bug
        with pytest.raises(IsolationViolation):
            host.assert_isolation()


class TestMigration:
    def test_contents_survive_the_move(self):
        fleet = boot_fleet(2)
        src, dst = fleet.host(0), fleet.host(1)
        vm = src.create_vm(VmSpec(name="tenant", memory_bytes=1 * MiB))
        name, gpa, hpa, size = region_extents(vm, unmediated=True)[0]
        pattern = bytes(range(256)) * 2
        src.hv.machine.dram.write(hpa, pattern)

        record = migrate_vm(src, dst, "tenant")
        assert record.verified and record.bytes_copied > 0
        assert "tenant" not in src.hv.vms and "tenant" not in src.vm_specs
        moved = dst.hv.vm("tenant")
        for mname, mgpa, mhpa, msize in region_extents(moved, unmediated=True):
            if mname == name and mgpa <= gpa < mgpa + msize:
                got = dst.hv.machine.dram.read(mhpa + (gpa - mgpa), len(pattern))
                assert bytes(got) == pattern
                break
        else:
            pytest.fail("migrated VM lost the extent holding the pattern")

    def test_isolation_holds_on_both_hosts(self):
        fleet = boot_fleet(2)
        src, dst = fleet.host(0), fleet.host(1)
        src.create_vm(VmSpec(name="a", memory_bytes=1 * MiB))
        dst.create_vm(VmSpec(name="b", memory_bytes=1 * MiB))
        migrate_vm(src, dst, "a")
        fleet.assert_isolation()
        assert {g for v in dst.hv.vms.values() for g in v.reserved_groups}

    def test_destination_full_leaves_source_untouched(self):
        fleet = boot_fleet(2)
        src, dst = fleet.host(0), fleet.host(1)
        src.create_vm(VmSpec(name="tenant", memory_bytes=1 * MiB))
        page = dst.hv.backing_page_bytes
        hog_bytes = (dst.capacity().free_guest_bytes // page - 2) * page
        dst.create_vm(VmSpec(name="hog", memory_bytes=hog_bytes))
        with pytest.raises(MigrationError):
            migrate_vm(src, dst, "tenant")
        assert "tenant" in src.hv.vms
        assert "tenant" in src.vm_specs
        src.assert_isolation()

    def test_same_host_rejected(self):
        fleet = boot_fleet(1)
        fleet.host(0).create_vm(VmSpec(name="a", memory_bytes=1 * MiB))
        with pytest.raises(MigrationError):
            migrate_vm(fleet.host(0), fleet.host(0), "a")

    def test_passthrough_device_blocks_migration(self):
        fleet = boot_fleet(2)
        vm = fleet.host(0).create_vm(VmSpec(name="a", memory_bytes=1 * MiB))
        vm.devices.append(object())  # any attached passthrough device
        with pytest.raises(MigrationError):
            migrate_vm(fleet.host(0), fleet.host(1), "a")


class TestEvacuation:
    def test_evacuation_unblocks_deferred_offline(self):
        """The fleet remedy for a deferred offlining (§ CE-storm PR):
        move the tenant off-host, then the parked remediation completes."""
        from repro.core.remediation import offline_row_group_live

        fleet = boot_fleet(2)
        src, dst = fleet.host(0), fleet.host(1)
        vm = src.create_vm(VmSpec(name="tenant", memory_bytes=1 * MiB))
        table_page = next(iter(vm.ept.table_pages))
        media = src.hv.machine.dram.mapping.decode(table_page)
        report = offline_row_group_live(src.hv, media.socket, media.row)
        assert report.deferred, "expected the EPT table page to defer"
        assert src.degraded

        records = evacuate_degraded(fleet, make_scheduler("best-fit"))
        assert [r.vm for r in records] == ["tenant"]
        assert records[0].dst_host == dst.host_id
        assert not src.degraded  # retry completed after the evacuation
        assert "tenant" in dst.hv.vms
        fleet.assert_isolation()

    def test_healthy_fleet_is_a_noop(self):
        fleet = boot_fleet(2)
        fleet.host(0).create_vm(VmSpec(name="a", memory_bytes=1 * MiB))
        assert evacuate_degraded(fleet, make_scheduler("best-fit")) == []
        assert "a" in fleet.host(0).hv.vms


class TestCampaignDriver:
    def test_workers_merge_bit_identically(self):
        base = dict(hosts=2, vms=4, budget=1, seed=3)
        serial = run_campaign(CampaignConfig(workers=1, **base))
        parallel = run_campaign(CampaignConfig(workers=2, **base))
        assert serial.digest() == parallel.digest()
        assert serial.to_json()["hosts"] == parallel.to_json()["hosts"]

    def test_backends_merge_bit_identically(self):
        base = dict(hosts=2, vms=4, budget=1, seed=3)
        scalar = run_campaign(CampaignConfig(backend="scalar", **base))
        batched = run_campaign(CampaignConfig(backend="batched", **base))
        assert scalar.decisions == batched.decisions
        assert scalar.host_results == batched.host_results

    def test_worker_failure_is_graceful(self):
        task = HostTask(
            spec=HostSpec(host_id=0),
            vm_specs=(),
            scenario="no-such-scenario",
            budget=1,
            storm_errors=5,
        )
        result = run_host_task(task)
        assert result["ok"] is False
        assert "FleetError" in result["error"]
        report = FleetReport.build(
            config={"policy": "best-fit"},
            decisions=[],
            host_results=[result],
            guest_capacity_bytes=0,
        )
        assert report.hosts_failed == 1
        assert "FAILED" in report.render_text()

    def test_health_scenario_offlines_per_host(self):
        report = run_campaign(
            CampaignConfig(hosts=2, vms=2, scenario="health", workers=1)
        )
        busy = [r for r in report.host_results if not r["idle"]]
        assert busy, "expected at least one host with tenants"
        assert all(r["ok"] for r in report.host_results)
        assert all(r["offlined"] or r["deferred_blocks"] for r in busy)

    def test_config_validation(self):
        with pytest.raises(FleetError):
            CampaignConfig(hosts=0)
        with pytest.raises(FleetError):
            CampaignConfig(workers=0)
        with pytest.raises(FleetError):
            CampaignConfig(scenario="bogus")

    def test_digest_ignores_worker_count(self):
        a = FleetReport.build(
            config=CampaignConfig(workers=1),
            decisions=[],
            host_results=[],
            guest_capacity_bytes=0,
        )
        b = FleetReport.build(
            config=CampaignConfig(workers=4),
            decisions=[],
            host_results=[],
            guest_capacity_bytes=0,
        )
        assert a.digest() == b.digest()

    def test_arrival_trace_is_deterministic(self):
        assert generate_arrival_trace(5, 10) == generate_arrival_trace(5, 10)
        assert generate_arrival_trace(5, 10) != generate_arrival_trace(6, 10)


class TestFleetObservability:
    def test_fleet_ops_emit_typed_events(self, tmp_path):
        from repro import obs
        from repro.obs.export import read_jsonl, write_jsonl

        obs.enable(reset=True)
        try:
            fleet = boot_fleet(2)
            ctl = AdmissionController(fleet, make_scheduler("spread"))
            for spec in generate_arrival_trace(0, 2):
                ctl.submit(spec)
            ctl.drain()
            migrate_vm(fleet.host(0), fleet.host(1), ctl.decisions[0].vm)

            events = list(obs.tracer().events())
            kinds = {type(e).__name__ for e in events}
            assert {"PlacementEvent", "AdmissionEvent", "VmMigrationEvent"} <= kinds
            snap = obs.metrics_snapshot()
            assert snap["counters"]["fleet.placements"] >= 2
            assert snap["counters"]["fleet.admission.admitted"] == 2
            assert snap["counters"]["fleet.migrations"] == 1

            path = tmp_path / "fleet.jsonl"
            write_jsonl(path, events)
            assert len(read_jsonl(path)) == len(events)
        finally:
            obs.disable(reset=True)
