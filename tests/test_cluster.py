"""Cluster-scale fleet campaigns (``repro.fleet.cluster``) and the
streaming merge (``repro.fleet.report.StreamingMerge``).

The load-bearing claims pinned here:

- the logical capacity twins admit **exactly** what the real
  hypervisor-backed fleet admits (same decision stream, same per-host
  VM lists) under the drain-per-arrival protocol;
- the saturation fast path is bit-equivalent to scanning every host;
- the cluster merge digest is invariant under worker count, backend,
  and pool mode — and sensitive to seed and shard count;
- folding shards incrementally (any completion order) produces the
  same merge digest as the batch report replayed through the fold.
"""

from __future__ import annotations

import random

import pytest

from repro import obs
from repro.errors import FleetError
from repro.fleet import (
    AdmissionController,
    CampaignConfig,
    ClusterConfig,
    Fleet,
    FleetCampaign,
    StreamingMerge,
    generate_arrival_trace,
    iter_arrival_trace,
    make_scheduler,
    run_cluster_campaign,
)
from repro.fleet.cluster import (
    ClusterShard,
    LogicalFleet,
    measure_host_shape,
    shard_ranges,
)
from repro.fleet.report import host_result_digest, scrub_host_result


def _decision_tuple(d) -> tuple:
    return (d.vm, d.outcome, d.host_id, d.attempts)


# ---------------------------------------------------------------------------
# Logical twins vs the real fleet
# ---------------------------------------------------------------------------


class TestLogicalTwins:
    @pytest.mark.parametrize("policy", ["first-fit", "best-fit", "spread"])
    def test_twin_admission_matches_real_fleet(self, policy):
        # Drive an oversubscribed trace through admission twice — once
        # against real booted hosts, once against the logical twins —
        # with the same drain-per-arrival cadence.  Decisions and
        # per-host VM lists must be identical: the twin replays the
        # §5.3 arithmetic, it does not approximate it.
        hosts, vms, seed = 3, 40, 7
        shape = measure_host_shape()
        real_fleet = Fleet.boot(hosts, seed=seed)
        real = AdmissionController(real_fleet, make_scheduler(policy))
        cfg = ClusterConfig(
            hosts=hosts, vms=vms, seed=seed, policy=policy, shards=1
        )
        logical_fleet = LogicalFleet.build(range(hosts), shape, cfg)
        logical = AdmissionController(
            logical_fleet,  # type: ignore[arg-type]
            make_scheduler(policy),
        )
        for spec in generate_arrival_trace(seed, vms):
            real.submit(spec)
            real.drain()
            logical.submit(spec)
            logical.drain()
        assert [_decision_tuple(d) for d in logical.decisions] == [
            _decision_tuple(d) for d in real.decisions
        ]
        for rh, lh in zip(real_fleet.hosts, logical_fleet.hosts):
            assert list(lh.vm_specs) == list(rh.vm_specs)
            assert lh.free_nodes == len(rh.capacity().free_guest_node_ids)

    def test_shape_measurement(self):
        shape = measure_host_shape()
        assert shape.guest_nodes > 0
        assert shape.node_bytes > 0
        assert shape.backing_page_bytes > 0
        assert shape.guest_capacity_bytes == shape.guest_nodes * shape.node_bytes

    def test_saturation_fast_path_is_bit_equivalent(self):
        # Same shard inputs, pruning on vs off: identical decision
        # streams (vm, outcome, attempts, shortfall detail included).
        shape = measure_host_shape()
        cfg = ClusterConfig(
            hosts=2, vms=80, seed=3, policy="first-fit", shards=1
        )

        fast_seen: list = []
        fast = ClusterShard(0, range(2), cfg, shape, fast_seen.append)
        slow_seen: list = []
        slow = ClusterShard(0, range(2), cfg, shape, slow_seen.append)
        for spec in generate_arrival_trace(3, 80):
            fast.offer(spec)
            # The scanned reference path: same controller, no bypass.
            slow.controller.submit(spec)
            slow.controller.drain()
        assert fast.pruned > 0, "the trace must actually saturate the shard"
        assert [
            (d.vm, d.outcome, d.host_id, d.attempts, d.requested_groups,
             d.available_groups)
            for d in fast_seen
        ] == [
            (d.vm, d.outcome, d.host_id, d.attempts, d.requested_groups,
             d.available_groups)
            for d in slow_seen
        ]

    def test_shard_ranges_partition_hosts(self):
        for hosts, shards in ((10, 3), (1000, 16), (5, 5), (7, 1)):
            ranges = shard_ranges(hosts, shards)
            flat = [i for r in ranges for i in r]
            assert flat == list(range(hosts))
            sizes = [len(r) for r in ranges]
            assert max(sizes) - min(sizes) <= 1

    def test_config_validation(self):
        with pytest.raises(FleetError):
            ClusterConfig(hosts=4, shards=5)
        with pytest.raises(FleetError):
            ClusterConfig(shards=0)
        with pytest.raises(FleetError):
            ClusterConfig(scenario="nope")

    def test_iter_arrival_trace_matches_list_form(self):
        assert list(iter_arrival_trace(7, 25)) == generate_arrival_trace(7, 25)


# ---------------------------------------------------------------------------
# Cluster campaigns end to end (small scale)
# ---------------------------------------------------------------------------


def _cluster_cfg(**kw) -> ClusterConfig:
    defaults = dict(hosts=4, vms=60, shards=2, budget=1, seed=7)
    defaults.update(kw)
    return ClusterConfig(**defaults)


class TestClusterCampaign:
    def test_digest_invariant_under_workers_backend_pool(self):
        reference = run_cluster_campaign(_cluster_cfg(workers=1))
        variants = [
            run_cluster_campaign(_cluster_cfg(workers=2)),
            run_cluster_campaign(_cluster_cfg(workers=2, backend="vectorized")),
            run_cluster_campaign(_cluster_cfg(workers=2), pool="spawn"),
        ]
        for v in variants:
            assert v.merge_digest == reference.merge_digest
        assert reference.hosts_failed == 0

    def test_digest_sensitive_to_seed_and_shards(self):
        base = run_cluster_campaign(_cluster_cfg())
        other_seed = run_cluster_campaign(_cluster_cfg(seed=8))
        other_shards = run_cluster_campaign(_cluster_cfg(shards=4))
        assert base.merge_digest != other_seed.merge_digest
        assert base.merge_digest != other_shards.merge_digest, (
            "shard boundaries change placement and must be hashed"
        )

    def test_report_shape(self):
        report = run_cluster_campaign(_cluster_cfg())
        assert report.summary["hosts"] == 4
        assert report.summary["arrivals"] == 60
        assert report.summary["admitted"] > 0
        assert report.hosts_per_sec > 0
        assert report.peak_rss_mib > 0
        text = report.render_text()
        assert "merge digest: " + report.merge_digest in text
        assert "hosts/sec" in text

    def test_bounded_memory_controller_retains_nothing(self):
        campaign_cfg = _cluster_cfg()
        from repro.fleet.cluster import ClusterCampaign

        campaign = ClusterCampaign(campaign_cfg)
        campaign.place()
        for shard in campaign.shards:
            assert shard.controller.decisions == [], (
                "cluster shards must stream decisions, not accumulate them"
            )
            assert shard.controller.decided > 0


# ---------------------------------------------------------------------------
# Streaming merge vs batch merge
# ---------------------------------------------------------------------------


class TestStreamingMerge:
    def _campaign_report(self):
        return FleetCampaign(
            CampaignConfig(hosts=3, vms=9, budget=1, seed=7)
        ).run()

    def test_streaming_equals_batch_replay(self):
        report = self._campaign_report()
        batch = report.merge_digest()

        fold = StreamingMerge(report.config)
        fold.guest_capacity_bytes = report.guest_capacity_bytes
        for d in report.decisions:
            fold.add_decision(d)
        hosts = list(report.host_results)
        random.Random(0).shuffle(hosts)  # workers finish in any order
        for r in hosts:
            fold.add_host_result(r)
        for m in report.migrations:
            fold.add_migration(m)
        fold.set_aftermath(degraded=report.degraded, audit=report.audit)
        assert fold.merge_digest() == batch

    def test_fold_aggregates_match_batch_report(self):
        report = self._campaign_report()
        fold = StreamingMerge(report.config)
        for d in report.decisions:
            fold.add_decision(d)
        for r in report.host_results:
            fold.add_host_result(r)
        assert fold.hosts == len(report.host_results)
        assert fold.hosts_ok == report.hosts_ok
        assert fold.placed_bytes == report.placed_bytes
        assert fold.acceptance_rate == pytest.approx(report.acceptance_rate)
        assert fold.rejected_by_reason == report.rejected_by_reason

    def test_host_order_does_not_matter_but_content_does(self):
        report = self._campaign_report()
        a = StreamingMerge(report.config)
        b = StreamingMerge(report.config)
        for r in report.host_results:
            a.add_host_result(r)
        for r in reversed(report.host_results):
            b.add_host_result(r)
        assert a.merge_digest() == b.merge_digest()
        mutated = dict(report.host_results[0])
        mutated["placed_bytes"] = mutated.get("placed_bytes", 0) + 1
        b.add_host_result(mutated)  # overwrite host 0's digest
        assert a.merge_digest() != b.merge_digest()

    def test_trace_key_is_scrubbed_everywhere(self):
        result = {"host_id": 0, "ok": True, "placed_bytes": 4}
        with_trace = {**result, "trace": {"merged_counters": {"act": 9.0}}}
        assert scrub_host_result(with_trace) == result
        assert host_result_digest(with_trace) == host_result_digest(result)
        a = StreamingMerge({"seed": 1})
        b = StreamingMerge({"seed": 1})
        a.add_host_result(result)
        b.add_host_result(with_trace)
        assert a.merge_digest() == b.merge_digest()

    def test_workers_ship_trace_summaries_when_obs_enabled(self):
        from repro.fleet.driver import HostTask, run_host_task
        from repro.fleet.host import HostSpec

        task = HostTask(
            spec=HostSpec(host_id=0, seed=3),
            vm_specs=(),
            scenario="attack",
            budget=1,
            storm_errors=1,
        )
        was_enabled = obs.ENABLED
        obs.enable()
        try:
            traced = run_host_task(task)
        finally:
            if not was_enabled:
                obs.disable()
        plain = run_host_task(task)
        assert "trace" in traced and "merged_counters" in traced["trace"]
        assert "trace" not in plain
        # The payload difference must never reach the digest.
        assert host_result_digest(traced) == host_result_digest(plain)


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestClusterCli:
    def test_fleet_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["fleet"])
        assert args.pool == "persistent" and args.shards == "auto"
        args = build_parser().parse_args(
            ["fleet", "--pool", "spawn", "--shards", "4"]
        )
        assert args.pool == "spawn" and args.shards == "4"

    def test_explicit_shards_runs_cluster_path(self, capsys):
        from repro.cli import main

        code = main(
            ["--seed", "7", "fleet", "--hosts", "4", "--vms", "8",
             "--budget", "1", "--shards", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "cluster campaign report" in out
        assert "merge digest:" in out

    def test_cluster_mode_rejects_chaos(self, capsys):
        from repro.cli import main

        code = main(
            ["fleet", "--hosts", "4", "--vms", "8", "--shards", "2",
             "--chaos-seed", "3"]
        )
        assert code == 2
        assert "not supported in cluster mode" in capsys.readouterr().err

    def test_auto_threshold(self):
        from repro.cli import CLUSTER_AUTO_HOSTS, _cluster_shards

        class _Args:
            hosts = CLUSTER_AUTO_HOSTS
            shards = "auto"
            chaos_seed = None
            journal = None
            resume = None

        assert _cluster_shards(_Args()) == 16
        _Args.hosts = CLUSTER_AUTO_HOSTS - 1
        assert _cluster_shards(_Args()) == 0
        _Args.hosts = CLUSTER_AUTO_HOSTS
        _Args.chaos_seed = 3
        assert _cluster_shards(_Args()) == 0, (
            "auto must never silently switch a chaos campaign to cluster mode"
        )
        _Args.chaos_seed = None
        _Args.shards = "1"
        assert _cluster_shards(_Args()) == 0
