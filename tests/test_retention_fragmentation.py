"""Tests for refresh/retention modeling and §8.1 fragmentation math."""

import pytest

from repro.core.fragmentation import (
    TYPICAL_VM_MIX,
    StrandingReport,
    groups_for,
    provider_aligned_mix,
    stranding_report,
    sweep_group_sizes,
)
from repro.dram.geometry import DRAMGeometry
from repro.dram.retention import (
    MAX_POSTPONED,
    REFS_PER_WINDOW,
    TREFI_S,
    RefreshScheduler,
    RetentionModel,
)
from repro.errors import DramError, ReproError
from repro.units import GiB, MS, MiB

GEOM = DRAMGeometry.paper_default()


class TestRefreshScheduler:
    def test_nominal_window_is_64ms(self):
        sched = RefreshScheduler(GEOM)
        assert sched.window_seconds() == pytest.approx(64 * MS, rel=0.01)

    def test_refs_issued_at_trefi_rate(self):
        sched = RefreshScheduler(GEOM)
        slices = sched.advance(100 * TREFI_S)
        assert len(slices) == 100
        assert sched.refs_issued == 100

    def test_slices_cover_distinct_rows(self):
        sched = RefreshScheduler(GEOM)
        slices = sched.advance(10 * TREFI_S)
        starts = [s.start for s in slices]
        assert len(set(starts)) == len(starts)

    def test_all_rows_covered_in_one_window(self):
        sched = RefreshScheduler(GEOM)
        covered = set()
        # +2 tREFI of slack absorbs float accumulation at the boundary.
        for s in sched.advance((REFS_PER_WINDOW + 2) * TREFI_S):
            covered.update(s)
        assert covered == set(range(GEOM.rows_per_bank))

    def test_postponement_stretches_window(self):
        eager = RefreshScheduler(GEOM)
        lazy = RefreshScheduler(GEOM, postpone_budget=MAX_POSTPONED)
        assert lazy.window_seconds() > eager.window_seconds()

    def test_postponed_refs_eventually_issued(self):
        sched = RefreshScheduler(GEOM, postpone_budget=4)
        slices = sched.advance(100 * TREFI_S)
        # 4 deferred at the start, then catch-up: still ~100 total - 4.
        assert len(slices) >= 92
        assert sched.postponed <= 4

    def test_budget_validated(self):
        with pytest.raises(DramError):
            RefreshScheduler(GEOM, postpone_budget=MAX_POSTPONED + 1)

    def test_negative_advance_rejected(self):
        with pytest.raises(DramError):
            RefreshScheduler(GEOM).advance(-1.0)


class TestRetentionModel:
    def test_no_failures_at_nominal_window(self):
        model = RetentionModel(GEOM, seed=1)
        # Weak cells are drawn with retention >= 0.8 * 64 ms.
        assert model.failure_rate(50 * MS) == 0.0

    def test_failures_grow_with_gap(self):
        model = RetentionModel(GEOM, seed=1)
        f1 = model.failure_rate(64 * MS)
        f2 = model.failure_rate(128 * MS)
        f3 = model.failure_rate(300 * MS)
        assert f1 <= f2 <= f3
        assert f3 > 0.0

    def test_postponement_interaction(self):
        """Stretched windows (postponed REFs) expose weak cells — the
        §2.3 reason thresholds are per-window quantities."""
        model = RetentionModel(GEOM, seed=2)
        eager = RefreshScheduler(GEOM)
        lazy = RefreshScheduler(GEOM, postpone_budget=MAX_POSTPONED)
        assert len(model.failures(lazy.window_seconds())) >= len(
            model.failures(eager.window_seconds())
        )

    def test_deterministic(self):
        a = RetentionModel(GEOM, seed=3).cells
        b = RetentionModel(GEOM, seed=3).cells
        assert a == b

    def test_validation(self):
        with pytest.raises(DramError):
            RetentionModel(GEOM, weak_ppm=-1)
        with pytest.raises(DramError):
            RetentionModel(GEOM).failures(-1)


class TestFragmentation:
    GROUP = 1536 * MiB  # the paper's 1.5 GiB group

    def test_groups_for(self):
        assert groups_for(512 * MiB, self.GROUP) == 1
        assert groups_for(self.GROUP, self.GROUP) == 1
        assert groups_for(self.GROUP + 1, self.GROUP) == 2
        assert groups_for(160 * GiB, self.GROUP) == 107

    def test_paper_example_512mib_vm(self):
        """§8.1: a 512 MiB VM on a 1.5 GiB group strands 1 GiB."""
        report = stranding_report([512 * MiB], self.GROUP)
        assert report.stranded_bytes == 1 * GiB
        assert report.stranded_fraction == pytest.approx(2 / 3)

    def test_typical_mix_stranding_moderate(self):
        report = stranding_report(list(TYPICAL_VM_MIX), self.GROUP)
        assert 0.0 < report.stranded_fraction < 0.10

    def test_snc_halves_worst_case(self):
        """§8.1: SNC-style half-size groups reduce stranding."""
        full = stranding_report(list(TYPICAL_VM_MIX), self.GROUP)
        snc = stranding_report(list(TYPICAL_VM_MIX), self.GROUP // 2)
        assert snc.stranded_bytes < full.stranded_bytes

    def test_sweep_monotone_for_micro_vms(self):
        micro = [512 * MiB] * 8
        reports = sweep_group_sizes(micro, [self.GROUP // 2, self.GROUP, 2 * self.GROUP])
        stranded = [r.stranded_bytes for r in reports]
        assert stranded == sorted(stranded)

    def test_provider_aligned_mix_strands_nothing(self):
        """§8.1: providers already sell sizes at group granularity."""
        mix = provider_aligned_mix(self.GROUP)
        assert stranding_report(mix, self.GROUP).stranded_bytes == 0

    def test_report_str(self):
        text = str(stranding_report([512 * MiB], self.GROUP))
        assert "stranded" in text and "1.5 GiB" in text

    def test_validation(self):
        with pytest.raises(ReproError):
            stranding_report([], self.GROUP)
        with pytest.raises(ReproError):
            groups_for(0, self.GROUP)
        with pytest.raises(ReproError):
            provider_aligned_mix(self.GROUP, count=0)
