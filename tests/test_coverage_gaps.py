"""Tests for smaller surfaces not exercised elsewhere."""

import pytest

from repro.core import SilozHypervisor
from repro.dram.disturbance import DisturbanceModel, DisturbanceProfile
from repro.dram.geometry import DRAMGeometry
from repro.dram.mapping import SkylakeMapping
from repro.dram.module import SimulatedDram
from repro.dram.trr import TrrConfig
from repro.errors import HvError, MappingError
from repro.hv import BaselineHypervisor, Machine, VmSpec
from repro.memctrl.controller import TraceResult
from repro.units import KiB, MiB

GEOM = DRAMGeometry.small()


class TestMappingMisc:
    def test_describe(self):
        text = SkylakeMapping(DRAMGeometry.paper_default()).describe()
        assert "chunk" in text and "region" in text

    def test_verify_invertible_passes_small(self):
        SkylakeMapping.for_small_geometry(GEOM).verify_invertible(stride=8 * KiB)

    def test_fraction_rejects_oversize_page(self):
        mapping = SkylakeMapping.for_small_geometry(GEOM)
        with pytest.raises(MappingError):
            mapping.fraction_of_pages_isolated(2 * GEOM.socket_bytes)

    def test_socket_of_hpa(self):
        two = DRAMGeometry.small(sockets=2)
        mapping = SkylakeMapping.for_small_geometry(two)
        assert mapping.socket_of_hpa(0) == 0
        assert mapping.socket_of_hpa(two.socket_bytes) == 1
        with pytest.raises(MappingError):
            mapping.socket_of_hpa(-1)


class TestDisturbanceQueries:
    def test_flips_in_rows(self):
        model = DisturbanceModel(
            GEOM, DisturbanceProfile.test_scale(threshold_mean=16.0), seed=1
        )
        for i in range(300):
            model.on_activate(0, 0, 3, float(i))
        hits = model.flips_in_rows(0, 0, range(0, 8))
        assert hits and all(f.row in range(0, 8) for f in hits)
        assert model.flips_in_rows(0, 1, range(0, 8)) == []


class TestModuleQueries:
    def test_acts_until_trr_ref(self):
        dram = SimulatedDram(GEOM, trr_config=TrrConfig(), trr_ref_every=16)
        assert dram.acts_until_trr_ref(0, 0) == 16
        dram.activate(0, 0, 3)
        assert dram.acts_until_trr_ref(0, 0) == 15

    def test_acts_until_trr_ref_none_without_trr(self):
        dram = SimulatedDram(GEOM, trr_config=None)
        assert dram.acts_until_trr_ref(0, 0) is None


class TestVmHammerPattern:
    def setup_method(self):
        self.hv = SilozHypervisor.boot(Machine.small(seed=91))
        self.vm = self.hv.create_vm(VmSpec(name="v", memory_bytes=2 * MiB))

    def test_many_sided_via_gpas(self):
        gpas = [i * 64 * KiB for i in range(4)]  # distinct row groups
        flips = self.vm.hammer_pattern(gpas, rounds=2000)
        assert isinstance(flips, list)
        # Containment as always.
        groups = {g for _, g in self.vm.reserved_groups}
        geom = self.hv.machine.geom
        for f in self.hv.machine.dram.flips_log:
            assert f.row // geom.rows_per_subarray in groups

    def test_mediated_gpa_rejected(self):
        mmio = next(r for r in self.vm.regions if r.name == "mmio")
        with pytest.raises(HvError):
            self.vm.hammer_pattern([0x0, mmio.gpa], rounds=1)

    def test_repr(self):
        assert "VirtualMachine" in repr(self.vm)
        assert "running" in repr(self.vm)


class TestTraceResultMisc:
    def test_tag_latency_empty(self):
        assert TraceResult().tag_latency_ns(0) == 0.0


class TestProvisionResult:
    def test_guest_node_ids_filter_by_socket(self):
        hv = SilozHypervisor.boot(Machine.small(sockets=2, seed=92))
        all_ids = hv.provision_result.guest_node_ids()
        s0 = hv.provision_result.guest_node_ids(0)
        s1 = hv.provision_result.guest_node_ids(1)
        assert sorted(s0 + s1) == sorted(all_ids)
        assert s0 and s1


class TestBaselineRepr:
    def test_node_repr(self):
        hv = BaselineHypervisor(Machine.small(seed=93), backing_page_bytes=64 * KiB)
        assert "NumaNode" in repr(hv.topology.node(0))
        assert "BuddyAllocator" in repr(hv.topology.node(0).allocator)


class TestOfflineIndexMerging:
    """Edge cases of the bisect interval index behind ``is_offline``."""

    def _registry(self):
        from repro.mm.offline import OfflineRegistry

        return OfflineRegistry()

    def test_empty_registry(self):
        reg = self._registry()
        assert not reg.is_offline(0)
        assert not reg.is_offline(10**12)

    def test_half_open_boundaries(self):
        from repro.dram.mapping import AddressRange

        reg = self._registry()
        reg._index_add(AddressRange(100, 200))
        assert not reg.is_offline(99)
        assert reg.is_offline(100)
        assert reg.is_offline(199)
        assert not reg.is_offline(200)

    def test_adjacent_ranges_merge_left(self):
        from repro.dram.mapping import AddressRange

        reg = self._registry()
        reg._index_add(AddressRange(0, 100))
        reg._index_add(AddressRange(100, 200))
        assert reg._index_starts == [0] and reg._index_ends == [200]
        assert reg.is_offline(150) and not reg.is_offline(200)

    def test_overlapping_ranges_merge(self):
        from repro.dram.mapping import AddressRange

        reg = self._registry()
        reg._index_add(AddressRange(0, 100))
        reg._index_add(AddressRange(50, 150))
        assert reg._index_starts == [0] and reg._index_ends == [150]

    def test_bridge_absorbs_multiple_right_neighbors(self):
        from repro.dram.mapping import AddressRange

        reg = self._registry()
        reg._index_add(AddressRange(200, 300))
        reg._index_add(AddressRange(400, 500))
        reg._index_add(AddressRange(600, 700))
        reg._index_add(AddressRange(100, 650))  # spans all three
        assert reg._index_starts == [100] and reg._index_ends == [700]
        assert reg.is_offline(100) and reg.is_offline(699)
        assert not reg.is_offline(700)

    def test_contained_range_is_noop(self):
        from repro.dram.mapping import AddressRange

        reg = self._registry()
        reg._index_add(AddressRange(0, 1000))
        reg._index_add(AddressRange(200, 300))
        assert reg._index_starts == [0] and reg._index_ends == [1000]

    def test_disjoint_ranges_stay_disjoint(self):
        from repro.dram.mapping import AddressRange

        reg = self._registry()
        reg._index_add(AddressRange(100, 200))
        reg._index_add(AddressRange(400, 500))
        assert reg._index_starts == [100, 400]
        assert not reg.is_offline(300)

    def test_randomized_adds_match_brute_force(self):
        import random

        from repro.dram.mapping import AddressRange

        rng = random.Random(17)
        reg = self._registry()
        covered = set()
        for _ in range(200):
            start = rng.randrange(0, 500)
            end = start + rng.randrange(1, 60)
            reg._index_add(AddressRange(start, end))
            covered.update(range(start, end))
            # Index invariant: sorted, disjoint, non-adjacent.
            pairs = list(zip(reg._index_starts, reg._index_ends))
            assert all(s < e for s, e in pairs)
            assert all(
                pairs[i][1] < pairs[i + 1][0] for i in range(len(pairs) - 1)
            )
        for point in range(0, 600):
            assert reg.is_offline(point) == (point in covered), point


class TestRemapRangeLeafSplitting:
    """``remap_range`` 2 MiB-leaf edge cases (live-migration EPT path)."""

    def setup_method(self):
        from test_ept import GEOM as EPT_GEOM, make_ept

        self.dram = SimulatedDram(EPT_GEOM, trr_config=None)
        self.ept = make_ept(self.dram)

    def test_partial_overlap_splits_large_leaf(self):
        from repro.units import KiB, PAGE_2M, PAGE_4K

        hpa = 4 * MiB
        self.ept.map(0, hpa, PAGE_2M)  # one large leaf
        old_start = hpa + 256 * KiB
        span = 512 * KiB
        new_start = 8 * MiB
        moved = self.ept.remap_range(old_start, span, new_start)
        assert moved == span
        assert self.ept.mapped_bytes == PAGE_2M  # split conserves mapping
        for off in range(0, PAGE_2M, PAGE_4K):
            got = self.ept.translate(off)
            piece = hpa + off
            if old_start <= piece < old_start + span:
                assert got == new_start + (piece - old_start), hex(off)
            else:
                assert got == piece, hex(off)

    def test_fully_covered_leaf_retargets_without_split(self):
        from repro.units import PAGE_2M, PAGE_4K

        hpa = 4 * MiB
        self.ept.map(0, hpa, PAGE_2M)
        pages_before = len(self.ept.table_pages)
        moved = self.ept.remap_range(hpa, PAGE_2M, 8 * MiB)
        assert moved == PAGE_2M
        # Wholesale retarget: no PT allocated, leaf stays 2 MiB.
        assert len(self.ept.table_pages) == pages_before
        assert self.ept.translate(0) == 8 * MiB
        assert self.ept.translate(PAGE_2M - PAGE_4K) == 8 * MiB + PAGE_2M - PAGE_4K

    def test_split_allocates_page_table(self):
        from repro.units import KiB, PAGE_2M

        hpa = 4 * MiB
        self.ept.map(0, hpa, PAGE_2M)
        pages_before = len(self.ept.table_pages)
        self.ept.remap_range(hpa + 512 * KiB, 512 * KiB, 8 * MiB)
        # Splitting a 2 MiB leaf into 512 4 KiB leaves needs a new PT.
        assert len(self.ept.table_pages) == pages_before + 1

    def test_interior_hole_moves_only_the_hole(self):
        from repro.units import KiB, PAGE_2M, PAGE_4K

        hpa = 2 * MiB
        self.ept.map(0, hpa, PAGE_2M)
        old_start = hpa + 1 * MiB
        moved = self.ept.remap_range(old_start, 64 * KiB, 10 * MiB)
        assert moved == 64 * KiB
        assert self.ept.translate(1 * MiB) == 10 * MiB
        assert self.ept.translate(1 * MiB - PAGE_4K) == hpa + 1 * MiB - PAGE_4K
        assert self.ept.translate(1 * MiB + 64 * KiB) == hpa + 1 * MiB + 64 * KiB

    def test_no_leaf_in_range_returns_zero(self):
        from repro.units import PAGE_2M

        self.ept.map(0, 4 * MiB, PAGE_2M)
        assert self.ept.remap_range(16 * MiB, PAGE_2M, 20 * MiB) == 0
        assert self.ept.translate(0) == 4 * MiB

    def test_4k_leaves_move_individually(self):
        from repro.units import PAGE_4K

        self.ept.map(0, 4 * MiB + PAGE_4K, 4 * PAGE_4K)  # unaligned: 4K leaves
        moved = self.ept.remap_range(4 * MiB + PAGE_4K, 2 * PAGE_4K, 12 * MiB)
        assert moved == 2 * PAGE_4K
        assert self.ept.translate(0) == 12 * MiB
        assert self.ept.translate(PAGE_4K) == 12 * MiB + PAGE_4K
        assert self.ept.translate(2 * PAGE_4K) == 4 * MiB + 3 * PAGE_4K

    def test_rejects_unaligned_arguments(self):
        from repro.errors import EptError
        from repro.units import PAGE_2M

        self.ept.map(0, 4 * MiB, PAGE_2M)
        with pytest.raises(EptError):
            self.ept.remap_range(4 * MiB + 1, PAGE_2M, 8 * MiB)
        with pytest.raises(EptError):
            self.ept.remap_range(4 * MiB, 0, 8 * MiB)
