"""Tests for smaller surfaces not exercised elsewhere."""

import pytest

from repro.core import SilozHypervisor
from repro.dram.disturbance import DisturbanceModel, DisturbanceProfile
from repro.dram.geometry import DRAMGeometry
from repro.dram.mapping import SkylakeMapping
from repro.dram.module import SimulatedDram
from repro.dram.trr import TrrConfig
from repro.errors import HvError, MappingError
from repro.hv import BaselineHypervisor, Machine, VmSpec
from repro.memctrl.controller import TraceResult
from repro.units import KiB, MiB

GEOM = DRAMGeometry.small()


class TestMappingMisc:
    def test_describe(self):
        text = SkylakeMapping(DRAMGeometry.paper_default()).describe()
        assert "chunk" in text and "region" in text

    def test_verify_invertible_passes_small(self):
        SkylakeMapping.for_small_geometry(GEOM).verify_invertible(stride=8 * KiB)

    def test_fraction_rejects_oversize_page(self):
        mapping = SkylakeMapping.for_small_geometry(GEOM)
        with pytest.raises(MappingError):
            mapping.fraction_of_pages_isolated(2 * GEOM.socket_bytes)

    def test_socket_of_hpa(self):
        two = DRAMGeometry.small(sockets=2)
        mapping = SkylakeMapping.for_small_geometry(two)
        assert mapping.socket_of_hpa(0) == 0
        assert mapping.socket_of_hpa(two.socket_bytes) == 1
        with pytest.raises(MappingError):
            mapping.socket_of_hpa(-1)


class TestDisturbanceQueries:
    def test_flips_in_rows(self):
        model = DisturbanceModel(
            GEOM, DisturbanceProfile.test_scale(threshold_mean=16.0), seed=1
        )
        for i in range(300):
            model.on_activate(0, 0, 3, float(i))
        hits = model.flips_in_rows(0, 0, range(0, 8))
        assert hits and all(f.row in range(0, 8) for f in hits)
        assert model.flips_in_rows(0, 1, range(0, 8)) == []


class TestModuleQueries:
    def test_acts_until_trr_ref(self):
        dram = SimulatedDram(GEOM, trr_config=TrrConfig(), trr_ref_every=16)
        assert dram.acts_until_trr_ref(0, 0) == 16
        dram.activate(0, 0, 3)
        assert dram.acts_until_trr_ref(0, 0) == 15

    def test_acts_until_trr_ref_none_without_trr(self):
        dram = SimulatedDram(GEOM, trr_config=None)
        assert dram.acts_until_trr_ref(0, 0) is None


class TestVmHammerPattern:
    def setup_method(self):
        self.hv = SilozHypervisor.boot(Machine.small(seed=91))
        self.vm = self.hv.create_vm(VmSpec(name="v", memory_bytes=2 * MiB))

    def test_many_sided_via_gpas(self):
        gpas = [i * 64 * KiB for i in range(4)]  # distinct row groups
        flips = self.vm.hammer_pattern(gpas, rounds=2000)
        assert isinstance(flips, list)
        # Containment as always.
        groups = {g for _, g in self.vm.reserved_groups}
        geom = self.hv.machine.geom
        for f in self.hv.machine.dram.flips_log:
            assert f.row // geom.rows_per_subarray in groups

    def test_mediated_gpa_rejected(self):
        mmio = next(r for r in self.vm.regions if r.name == "mmio")
        with pytest.raises(HvError):
            self.vm.hammer_pattern([0x0, mmio.gpa], rounds=1)

    def test_repr(self):
        assert "VirtualMachine" in repr(self.vm)
        assert "running" in repr(self.vm)


class TestTraceResultMisc:
    def test_tag_latency_empty(self):
        assert TraceResult().tag_latency_ns(0) == 0.0


class TestProvisionResult:
    def test_guest_node_ids_filter_by_socket(self):
        hv = SilozHypervisor.boot(Machine.small(sockets=2, seed=92))
        all_ids = hv.provision_result.guest_node_ids()
        s0 = hv.provision_result.guest_node_ids(0)
        s1 = hv.provision_result.guest_node_ids(1)
        assert sorted(s0 + s1) == sorted(all_ids)
        assert s0 and s1


class TestBaselineRepr:
    def test_node_repr(self):
        hv = BaselineHypervisor(Machine.small(seed=93), backing_page_bytes=64 * KiB)
        assert "NumaNode" in repr(hv.topology.node(0))
        assert "BuddyAllocator" in repr(hv.topology.node(0).allocator)
