"""Tests for mFIT-style subarray-size inference (§4.1)."""

import pytest

from repro.attack.mfit import (
    activations_to_flip,
    infer_subarray_rows,
    verify_inference,
)
from repro.core import SilozHypervisor
from repro.dram.disturbance import DisturbanceProfile
from repro.dram.geometry import DRAMGeometry
from repro.dram.module import SimulatedDram
from repro.errors import AttackError
from repro.hv import Machine


def make_dram(rows_per_bank=512, rows_per_subarray=64, threshold=1500.0, seed=3):
    geom = DRAMGeometry.small(
        rows_per_bank=rows_per_bank, rows_per_subarray=rows_per_subarray
    )
    return SimulatedDram(
        geom,
        profile=DisturbanceProfile.test_scale(threshold_mean=threshold),
        trr_config=None,
        seed=seed,
    )


class TestActivationsToFlip:
    def test_interior_victim_flips(self):
        dram = make_dram()
        acts = activations_to_flip(dram, 0, 0, victim_row=10)
        assert acts is not None
        # Roughly the threshold (both aggressors contribute weight 1).
        assert 512 <= acts <= 8192

    def test_boundary_victim_needs_more(self):
        dram = make_dram()
        interior = activations_to_flip(dram, 0, 0, victim_row=10)
        boundary = activations_to_flip(dram, 0, 0, victim_row=63)
        assert boundary is None or boundary > 1.4 * interior

    def test_cap_returns_none(self):
        dram = make_dram(threshold=10_000.0)
        assert activations_to_flip(dram, 0, 0, 10, cap=512) is None

    def test_edge_victim_rejected(self):
        dram = make_dram()
        with pytest.raises(AttackError):
            activations_to_flip(dram, 0, 0, 0)
        with pytest.raises(AttackError):
            activations_to_flip(dram, 0, 0, dram.geom.rows_per_bank - 1)


class TestInference:
    def test_infers_64_row_subarrays(self):
        assert infer_subarray_rows(make_dram(), max_rows=200) == 64

    def test_infers_8_row_subarrays(self):
        dram = SimulatedDram(
            DRAMGeometry.small(),
            profile=DisturbanceProfile.test_scale(threshold_mean=300.0),
            trr_config=None,
            seed=3,
        )
        assert infer_subarray_rows(dram, max_rows=40) == 8

    def test_different_seeds_agree(self):
        sizes = {
            infer_subarray_rows(make_dram(seed=s), max_rows=200) for s in (1, 2, 3)
        }
        assert sizes == {64}

    def test_window_without_boundary_raises(self):
        with pytest.raises(AttackError, match="no boundary"):
            infer_subarray_rows(make_dram(), max_rows=40)  # < one subarray

    def test_too_small_window_rejected(self):
        with pytest.raises(AttackError):
            infer_subarray_rows(make_dram(), max_rows=3)

    def test_verify_inference(self):
        dram = make_dram()
        assert verify_inference(dram, 64)
        assert not verify_inference(dram, 0)
        assert not verify_inference(dram, 500)  # does not divide 512 rows
        assert not verify_inference(dram, 96)  # not a power of two
        assert verify_inference(dram, 128)  # 2^7 and divides the bank


class TestBootIntegration:
    def test_boot_with_inference(self):
        """§4.1 end to end: Siloz calibrates the subarray size itself
        and manages the correct group geometry."""
        machine = Machine.small(seed=6)
        hv = SilozHypervisor.boot(machine, infer_subarray_size=True)
        assert hv.managed_geom.rows_per_subarray == machine.geom.rows_per_subarray

    def test_inference_leaves_production_dram_clean(self):
        machine = Machine.small(seed=6)
        SilozHypervisor.boot(machine, infer_subarray_size=True)
        assert machine.dram.flips_log == []
