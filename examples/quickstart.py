#!/usr/bin/env python3
"""Quickstart: boot Siloz, place two VMs, hammer from one, watch nothing
escape.

This walks the library's core loop in ~40 lines of API:

1. Build a simulated host (bit-level DRAM + Skylake-style mapping).
2. Boot the Siloz hypervisor: every subarray group becomes a logical
   NUMA node; EPT rows get guard-row protection.
3. Create an attacker VM and a victim VM — Siloz puts them in private
   subarray groups.
4. Run a Rowhammer campaign from inside the attacker.
5. Verify: bits flipped (the attack "worked"), but only inside the
   attacker's own groups; the victim's data is intact.

Run:  python examples/quickstart.py
"""

from repro.attack import attack_from_vm
from repro.core import SilozHypervisor, audit_hypervisor
from repro.hv import Machine, VmSpec
from repro.units import MiB

def main() -> None:
    # A small host we can simulate bit-for-bit: 8 banks, 32 MiB,
    # 64-row subarrays (the paper geometry scaled down ~6000x).
    machine = Machine.small(seed=42)
    print("Host DRAM:")
    print(machine.geom.describe())

    hv = SilozHypervisor.boot(machine)
    print(f"\n{hv.describe()}\n")

    attacker = hv.create_vm(VmSpec(name="attacker", memory_bytes=2 * MiB))
    victim = hv.create_vm(VmSpec(name="victim", memory_bytes=2 * MiB))
    print(f"attacker nodes={attacker.node_ids} groups={sorted(attacker.reserved_groups)}")
    print(f"victim   nodes={victim.node_ids} groups={sorted(victim.reserved_groups)}")

    # The victim stores something it cares about.
    secret = b"\x5a" * 4096
    victim.write(0x0, secret)

    # The attacker fuzzes hammering patterns against its own memory —
    # the only memory a guest can activate.
    print("\nRunning Blacksmith-style campaign from inside 'attacker'...")
    outcome = attack_from_vm(hv, attacker, seed=42, pattern_budget=30)
    print(outcome.summary())

    assert outcome.report.flip_count > 0, "expected the attack to flip bits"
    assert outcome.contained, "Siloz must contain every flip"
    assert victim.read(0x0, 4096) == secret, "victim data must be intact"
    assert audit_hypervisor(hv) == [], "placement invariants must hold"

    print(
        f"\nResult: {outcome.report.flip_count} bit flips, all inside the "
        "attacker's own subarray groups."
    )
    print("Victim data verified intact. Isolation audit: clean.")


if __name__ == "__main__":
    main()
