#!/usr/bin/env python3
"""EPT integrity: the three protection modes of paper §5.4, demonstrated.

Extended page tables *enforce* Siloz's isolation, so they need their own
defence against bit flips.  This example shows all three outcomes:

1. **No protection**: hammer the rows next to an EPT table page — the
   page takes flips; with enough flips in one 64-bit word, a guest's
   translation silently changes (the VM-escape primitive).
2. **Guard rows** (Siloz's default): the EPT row group sits inside a
   reserved block (paper: b=32 row groups, EPT row at offset o=12);
   the nearest allocatable rows are beyond the blast radius, so EPT
   rows never flip.
3. **Secure EPT** (TDX/SNP-style): flips are possible but *detected on
   use* — the corrupted mapping can never be exercised.

Run:  python examples/ept_protection.py
"""

from repro.attack.hammer import hammer_pattern_rows
from repro.core import EptProtection, SilozConfig, SilozHypervisor
from repro.core.groups import ept_block_rows, ept_rows
from repro.errors import EptIntegrityError
from repro.hv import Machine, VmSpec
from repro.units import MiB

ROUNDS = 6000


def no_protection() -> None:
    machine = Machine.small(seed=5)
    cfg = SilozConfig.scaled_for(machine.geom, ept_protection=EptProtection.NONE)
    hv = SilozHypervisor.boot(machine, cfg)
    vm = hv.create_vm(VmSpec(name="vm", memory_bytes=2 * MiB))
    dram = hv.machine.dram

    page = vm.ept.table_pages[-1]
    media = dram.mapping.decode(page)
    bank = media.socket_bank_index(machine.geom)
    neighbors = [
        r
        for r in (media.row - 1, media.row + 1)
        if 0 <= r < machine.geom.rows_per_bank
    ]
    hammer_pattern_rows(dram, 0, bank, neighbors, rounds=ROUNDS)
    flips = dram.flip_bits_at(0, bank, media.row)
    print("1) EptProtection.NONE")
    print(f"   EPT table page at row {media.row}: {len(flips)} bit flips. UNSAFE.\n")


def guard_rows() -> None:
    machine = Machine.small(seed=5)
    hv = SilozHypervisor.boot(machine)  # GUARD_ROWS default
    hv.create_vm(VmSpec(name="vm", memory_bytes=2 * MiB))
    dram = hv.machine.dram
    geom = machine.geom

    block = ept_block_rows(hv.config, geom)
    protected = set(ept_rows(hv.config, geom))
    # The closest rows an attacker (or anyone) can still allocate:
    hammer_pattern_rows(dram, 0, 0, [block.stop, block.stop + 2], rounds=ROUNDS)
    flipped = {f.row for f in dram.flips_log}
    print("2) EptProtection.GUARD_ROWS (Siloz default)")
    print(
        f"   reserved block: rows {block.start}-{block.stop - 1}, "
        f"EPT rows {sorted(protected)}, rest offlined as guards"
    )
    print(f"   hammered rows {block.stop},{block.stop + 2}; flips landed in rows "
          f"{sorted(flipped) or 'none'}")
    print(f"   flips in EPT rows: {len(flipped & protected)} — SAFE.\n")


def secure_ept() -> None:
    machine = Machine.small(seed=5)
    cfg = SilozConfig.scaled_for(
        machine.geom, ept_protection=EptProtection.SECURE_EPT
    )
    hv = SilozHypervisor.boot(machine, cfg)
    vm = hv.create_vm(VmSpec(name="vm", memory_bytes=2 * MiB))
    dram = hv.machine.dram

    # Simulate a multi-bit (ECC-defeating) flip directly in a leaf entry.
    addr = vm.ept.leaf_entry_addr(0x0)
    media = dram.mapping.decode(addr)
    bank = media.socket_bank_index(machine.geom)
    for bit in (12, 13, 14):
        dram._toggle_bit(0, bank, media.row, media.col * 8 + bit)

    print("3) EptProtection.SECURE_EPT (TDX/SNP-style)")
    try:
        vm.read(0x0, 8)
        print("   corrupted mapping was used — THIS MUST NOT PRINT")
    except EptIntegrityError as exc:
        print(f"   corrupted entry detected on use: {exc}")
        print("   escape prevented (availability depends on firmware policy).")


def main() -> None:
    no_protection()
    guard_rows()
    secure_ept()


if __name__ == "__main__":
    main()
