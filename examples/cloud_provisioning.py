#!/usr/bin/env python3
"""Cloud-operator view: logical NUMA nodes, VM lifecycle, fragmentation.

Walks the management plane of paper §5.2-§5.3 and the §8.1 discussion:

- what the boot-time topology looks like (host / guest / EPT nodes),
- provisioning VMs of different sizes onto private subarray groups,
- NUMA locality (same-socket groups preferred),
- shutdown vs reservation release,
- the fragmentation math: subarray-group granularity vs VM sizes, and
  how sub-NUMA clustering halves the group size.

Run:  python examples/cloud_provisioning.py
"""

from repro.core import SilozHypervisor, audit_hypervisor
from repro.dram.geometry import DRAMGeometry
from repro.hv import Machine, VmSpec
from repro.mm.numa import NodeKind
from repro.units import GiB, MiB, fmt_bytes


def topology_tour(hv: SilozHypervisor) -> None:
    print("Boot-time logical NUMA topology:")
    for kind in NodeKind:
        nodes = hv.topology.nodes_of_kind(kind)
        if not nodes:
            continue
        sample = nodes[0]
        print(
            f"  {kind.value:>5}: {len(nodes)} node(s), e.g. node {sample.node_id} "
            f"(socket {sample.physical_node}, {fmt_bytes(sample.total_bytes)}, "
            f"cpus={sample.cpus or 'memory-only'})"
        )
    print(f"  offlined guard rows: {fmt_bytes(hv.offline.total_bytes())}")
    print()


def lifecycle(hv: SilozHypervisor) -> None:
    group = hv.machine.geom.subarray_group_bytes
    print(f"Subarray group size on this host: {fmt_bytes(group)}")

    small = hv.create_vm(VmSpec(name="small", memory_bytes=1 * MiB))
    large = hv.create_vm(VmSpec(name="large", memory_bytes=2 * group - 2 * MiB))
    print(f"  'small' ({fmt_bytes(small.unmediated_bytes)}) -> nodes {small.node_ids}")
    print(f"  'large' ({fmt_bytes(large.unmediated_bytes)}) -> nodes {large.node_ids}")
    assert audit_hypervisor(hv) == []

    # Shutdown frees memory but keeps the reservation (paper §5.3)...
    hv.destroy_vm("small")
    replacement = hv.create_vm(VmSpec(name="next", memory_bytes=1 * MiB))
    assert not (set(replacement.node_ids) & set(small.node_ids))
    print("  after shutdown, 'small's nodes stay reserved until released")

    # ...destroying the control group releases the nodes for reuse.
    hv.release_reservation("small")
    reuse = hv.create_vm(VmSpec(name="reuse", memory_bytes=1 * MiB))
    assert set(reuse.node_ids) & set(small.node_ids)
    print("  after release_reservation, the nodes are immediately reusable")
    print()


def fragmentation_math() -> None:
    """§8.1: group granularity vs VM demand, at paper scale."""
    geom = DRAMGeometry.paper_default()
    group = geom.subarray_group_bytes
    print("Fragmentation analysis (paper geometry, 1.5 GiB groups):")
    for vm_request in (512 * MiB, 1 * GiB, int(1.5 * GiB), 4 * GiB, 160 * GiB):
        groups_needed = -(-vm_request // group)
        waste = groups_needed * group - vm_request
        print(
            f"  VM of {fmt_bytes(vm_request):>8}: {groups_needed:3d} group(s), "
            f"stranded {fmt_bytes(waste):>8} "
            f"({waste / (groups_needed * group) * 100:4.1f}%)"
        )
    # Sub-NUMA clustering halves banks-per-node and thus the group size.
    snc = group // 2
    print(
        f"  with sub-NUMA clustering the group shrinks to {fmt_bytes(snc)}, "
        f"halving worst-case stranding (§8.1)"
    )
    print()


def main() -> None:
    hv = SilozHypervisor.boot(Machine.small(seed=1))
    print(hv.describe(), "\n")
    topology_tour(hv)
    lifecycle(hv)
    fragmentation_math()
    print("Isolation audit:", audit_hypervisor(hv) or "clean")


if __name__ == "__main__":
    main()
