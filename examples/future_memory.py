#!/usr/bin/env python3
"""Siloz on tomorrow's memory: DDR5, HBM2, and sub-NUMA clustering.

Walks the §8.1/§8.2 discussion with real objects:

- DDR5 doubles banks per socket, so subarray groups grow to 3 GiB —
  coarser provisioning, same isolation algebra — and its per-device
  address handling removes the artificial-group workaround for
  non-power-of-2 subarrays.
- Sub-NUMA clustering splits the interleave set, shrinking groups (and
  stranding) proportionally — and composes with DDR5.
- HBM2 follows the same group formula with very different constants.

Run:  python examples/future_memory.py
"""

from repro.core import SilozConfig
from repro.core.fragmentation import TYPICAL_VM_MIX, stranding_report
from repro.dram.geometry import DRAMGeometry
from repro.dram.transforms import TransformConfig, subarray_isolation_preserved
from repro.units import fmt_bytes


def show(label: str, geom: DRAMGeometry) -> None:
    report = stranding_report(list(TYPICAL_VM_MIX), geom.subarray_group_bytes)
    print(
        f"{label:>22}: {geom.banks_per_socket:4d} banks/socket, "
        f"group = {fmt_bytes(geom.subarray_group_bytes):>8}, "
        f"typical-mix stranding = {report.stranded_fraction * 100:4.1f}%"
    )


def main() -> None:
    ddr4 = DRAMGeometry.paper_default()
    ddr5 = DRAMGeometry.ddr5_server()
    hbm2 = DRAMGeometry.hbm2_stack()

    print("Subarray-group size across memory technologies (§8.2):")
    show("DDR4 (paper server)", ddr4)
    show("DDR4 + SNC-2", ddr4.with_sub_numa_clustering(2))
    show("DDR5", ddr5)
    show("DDR5 + SNC-2", ddr5.with_sub_numa_clustering(2))
    show("HBM2 stack", hbm2)

    print("\nEPT+guard reservation stays negligible everywhere:")
    cfg = SilozConfig.paper_default()
    for label, geom in (("DDR4", ddr4), ("DDR5", ddr5)):
        print(f"  {label}: {cfg.reserved_fraction(geom) * 100:.4f}% of DRAM")

    print("\nNon-power-of-2 subarrays (e.g. 768 rows):")
    ddr4_ok = subarray_isolation_preserved(768, TransformConfig())
    ddr5_ok = subarray_isolation_preserved(768, TransformConfig(ddr5=True))
    print(f"  DDR4 mirroring/inversion preserves isolation: {ddr4_ok}")
    print(f"  DDR5 (transforms undone per device, §8.2):    {ddr5_ok}")
    print(
        "  -> on DDR4, Siloz falls back to artificial guarded groups "
        "(~0.39-1.56% of DRAM); on DDR5 it doesn't have to."
    )


if __name__ == "__main__":
    main()
