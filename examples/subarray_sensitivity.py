#!/usr/bin/env python3
"""Mini Figure 6/7: does the presumed subarray size cost performance?

Siloz takes the subarray size as a boot parameter (paper §5.3).  Smaller
presumed subarrays mean more, smaller logical NUMA nodes; larger ones
mean fewer, bigger nodes.  §7.4 shows neither direction matters for
performance, because DDR access timing and bank-level parallelism are
independent of the subarray index.  This example reruns that experiment
at example scale (fewer trials than the benches; see benchmarks/ for
the full versions).

Run:  python examples/subarray_sensitivity.py
"""

from repro.eval import perf_experiment, render_figure, siloz_system
from repro.mm.numa import NodeKind

WORKLOADS = ["redis-b", "terasort", "mlc-stream"]


def main() -> None:
    systems = [
        siloz_system(name="siloz-1024", rows_per_subarray=128, seed=9),
        siloz_system(name="siloz-512", rows_per_subarray=64, seed=9),
        siloz_system(name="siloz-2048", rows_per_subarray=256, seed=9),
    ]
    print("Logical node counts per variant (the §7.4 management trade-off):")
    for system in systems:
        guests = len(system.hv.topology.nodes_of_kind(NodeKind.GUEST_RESERVED))
        group = system.hv.managed_geom.subarray_group_bytes
        print(
            f"  {system.name:>10}: {guests:3d} guest-reserved nodes of "
            f"{group // 2**20} MiB"
        )

    comparison = perf_experiment(
        systems, WORKLOADS, metric="time", trials=3, accesses=8000
    )
    print()
    print(
        render_figure(
            comparison,
            baseline="siloz-1024",
            title="Execution time vs Siloz-1024 (negative = faster). "
            "Paper: no trend, <0.5% geomean.",
        )
    )
    for name in ("siloz-512", "siloz-2048"):
        ratio = comparison.geomean_ratio(name, baseline="siloz-1024")
        print(f"geomean({name}/siloz-1024) = {ratio:.5f}")


if __name__ == "__main__":
    main()
