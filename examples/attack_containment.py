#!/usr/bin/env python3
"""Inter-VM Rowhammer: baseline Linux/KVM vs Siloz, side by side.

The same Blacksmith-style campaign runs from an attacker VM on two
hypervisors sharing identical hardware and DIMM susceptibility:

- **baseline**: VMs allocated back-to-back from the socket pool — the
  attacker's rows are subarray-adjacent to the victim's, so flips cross
  the VM boundary (the threat in paper §1).
- **Siloz**: each VM confined to private subarray groups — the same
  flips land only in the attacker's own memory (paper Table 3).

Run:  python examples/attack_containment.py
"""

from repro.attack import attack_from_vm
from repro.core import SilozHypervisor
from repro.dram.disturbance import DisturbanceProfile
from repro.hv import BaselineHypervisor, Machine, VmSpec
from repro.units import KiB, MiB


def campaign(hv, label: str) -> None:
    attacker = hv.create_vm(VmSpec(name="attacker", memory_bytes=2 * MiB))
    victim = hv.create_vm(VmSpec(name="victim", memory_bytes=2 * MiB))
    # The victim fills all of its RAM with a known pattern.
    pattern = b"\xa5" * (2 * MiB)
    victim.write(0x0, pattern)

    outcome = attack_from_vm(hv, attacker, seed=17, pattern_budget=120)

    corrupted = victim.read(0x0, len(pattern), ecc=False) != pattern
    print(f"--- {label} ---")
    print(f"  flips induced: {outcome.report.flip_count}")
    print(
        "  flips in victim-owned memory (guest RAM or its host-side "
        f"virtio/MMIO buffers): {outcome.victim_flips or 'none'}"
    )
    print(f"  victim guest-RAM pattern corrupted: {'YES' if corrupted else 'no'}")
    print()


def main() -> None:
    dimm = DisturbanceProfile.test_scale(threshold_mean=1500.0)

    print("Same hardware, same DIMM susceptibility, same attack.\n")
    campaign(
        BaselineHypervisor(
            Machine.small(seed=17, profile=dimm), backing_page_bytes=64 * KiB
        ),
        "baseline Linux/KVM",
    )
    campaign(
        SilozHypervisor.boot(Machine.small(seed=17, profile=dimm)),
        "Siloz",
    )
    print(
        "Siloz does not stop the hammering — it makes the blast radius\n"
        "coincide with memory the attacker already owns."
    )


if __name__ == "__main__":
    main()
