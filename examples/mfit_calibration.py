#!/usr/bin/env python3
"""Inferring the subarray size without vendor cooperation (paper §4.1).

DDR4 does not report subarray sizes, and not every vendor will share
them.  The paper applies the mFIT methodology: sweep double-sided
Rowhammer probes across rows and watch where attacks *fail* — victims
sitting against subarray boundaries only receive single-sided pressure.
The failure positions repeat at the subarray period.

This example runs the sweep on a simulated module, prints the per-row
activation thresholds (boundaries stand out at ~2x), and boots Siloz
with the inferred size.

Run:  python examples/mfit_calibration.py
"""

from repro.attack.mfit import activations_to_flip, infer_subarray_rows
from repro.core import SilozHypervisor
from repro.dram.disturbance import DisturbanceProfile
from repro.dram.module import SimulatedDram
from repro.hv import Machine


def main() -> None:
    machine = Machine.small(seed=9)
    geom = machine.geom
    print(f"True (undisclosed) subarray size: {geom.rows_per_subarray} rows\n")

    # Calibration pass on a scratch DRAM (pre-production burn-in).
    probe = SimulatedDram(
        geom,
        profile=DisturbanceProfile.test_scale(threshold_mean=1500.0),
        trr_config=None,
        seed=9,
    )

    print("Per-victim activations-to-flip around the first boundary:")
    boundary = geom.rows_per_subarray
    for victim in range(boundary - 4, boundary + 4):
        acts = activations_to_flip(probe, 0, 0, victim, cap=1 << 14)
        marker = "  <-- boundary row" if victim in (boundary - 1, boundary) else ""
        print(f"  row {victim:4d}: {acts if acts is not None else '> cap':>6}{marker}")

    probe2 = SimulatedDram(
        geom,
        profile=DisturbanceProfile.test_scale(threshold_mean=1500.0),
        trr_config=None,
        seed=10,
    )
    inferred = infer_subarray_rows(probe2)
    print(f"\nInferred subarray size: {inferred} rows")
    assert inferred == geom.rows_per_subarray

    hv = SilozHypervisor.boot(machine, infer_subarray_size=True)
    print(f"\nSiloz booted with the inferred geometry:\n{hv.describe()}")


if __name__ == "__main__":
    main()
