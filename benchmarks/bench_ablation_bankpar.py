"""A1 (paper §4.1): the bank-level-parallelism ablation.

Why subarray *groups* (one subarray from every bank) instead of
isolating a VM to one subarray or a few banks?  Because losing
bank-level parallelism costs real time — ">= 18 % execution time for
some workloads".  This bench runs the same traces against the full
interleave and against 1-, 2-, 4- and half-bank restrictions.
"""

import random

from conftest import banner

from repro.dram.geometry import DRAMGeometry
from repro.dram.mapping import SkylakeMapping
from repro.eval.report import render_table
from repro.memctrl import (
    MemoryAccess,
    MemoryController,
    RestrictedInterleaveMapping,
)

GEOM = DRAMGeometry.medium(sockets=1)
ACCESSES = 15_000


def _random_trace(seed: int, span_bytes: int):
    rng = random.Random(seed)
    lines = span_bytes // 64
    return [MemoryAccess(rng.randrange(lines) * 64) for _ in range(ACCESSES)]


def _stream_trace(span_bytes: int):
    lines = span_bytes // 64
    return [MemoryAccess((i % lines) * 64) for i in range(ACCESSES)]


def _run_ablation():
    span = GEOM.bank_bytes // 4  # footprint that fits every restriction
    full = MemoryController(SkylakeMapping(GEOM))
    rows = []
    results = {}
    for label, trace in (
        ("random", _random_trace(1, span)),
        ("stream", _stream_trace(span)),
    ):
        t_full = full.run_trace(trace).total_time_ns
        results[(label, "all")] = t_full
        for nbanks in (1, 2, 4, GEOM.banks_per_socket // 2):
            mc = MemoryController(
                RestrictedInterleaveMapping.first_n_banks(GEOM, nbanks)
            )
            t = mc.run_trace(trace).total_time_ns
            results[(label, nbanks)] = t
            rows.append(
                [
                    label,
                    nbanks,
                    f"{t / 1e6:.2f}",
                    f"{(t / t_full - 1) * 100:+.1f}%",
                ]
            )
        rows.append([label, f"all ({GEOM.banks_per_socket})", f"{t_full / 1e6:.2f}", "+0.0%"])
    return rows, results


def test_bank_parallelism_ablation(benchmark):
    rows, results = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    print(banner("A1: cost of losing bank-level parallelism (§4.1)"))
    print(
        render_table(
            ["trace", "banks available", "exec time (ms)", "vs full interleave"],
            rows,
        )
    )
    for label in ("random", "stream"):
        t_full = results[(label, "all")]
        t_one = results[(label, 1)]
        # The paper cites >= 18 % degradation for some workloads; the
        # single-bank case is far worse than that here.
        assert t_one > 1.18 * t_full, f"{label}: single-bank not >= 18% slower"
        # And restrictions are monotone: more banks, less time.
        assert results[(label, 1)] >= results[(label, 2)] >= results[(label, 4)]
