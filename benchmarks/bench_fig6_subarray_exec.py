"""Figure 6 (paper §7.4): subarray-size sensitivity, execution time.

Siloz managing 64-, 128- and 256-row subarray groups (the medium-scale
analogues of the paper's Siloz-512/-1024/-2048: same 1:2:4 ratios around
the hardware's true size), normalised to the middle variant.  Paper
claims: < 0.5 % geomean differences and *no trend* with node count —
if node iteration mattered, the most-nodes variant (smallest subarrays)
would be consistently slowest, which it is not.
"""

from conftest import banner, show_figure

from repro.eval import perf_experiment, siloz_system
from repro.workloads import EXEC_TIME_SUITES

TRIALS = 5
ACCESSES = 12_000


def _run():
    systems = [
        siloz_system(
            name="siloz-1024", rows_per_subarray=128, seed=60, backend="vectorized"
        ),
        siloz_system(
            name="siloz-512", rows_per_subarray=64, seed=60, backend="vectorized"
        ),
        siloz_system(
            name="siloz-2048", rows_per_subarray=256, seed=60, backend="vectorized"
        ),
    ]
    return perf_experiment(
        systems,
        list(EXEC_TIME_SUITES),
        metric="time",
        trials=TRIALS,
        accesses=ACCESSES,
    )


def test_fig6_subarray_size_exec_time(benchmark):
    comparison = benchmark.pedantic(_run, rounds=1, iterations=1)
    print(banner("Figure 6: Siloz-1024-normalized execution time (%)"))
    show_figure(comparison, name="fig6_subarray_exec", baseline="siloz-1024")
    r512 = comparison.geomean_ratio("siloz-512", baseline="siloz-1024")
    r2048 = comparison.geomean_ratio("siloz-2048", baseline="siloz-1024")
    print(f"geomean ratios: siloz-512={r512:.5f} siloz-2048={r2048:.5f}")
    assert abs(r512 - 1.0) < 0.01
    assert abs(r2048 - 1.0) < 0.01
    # "No trend": the many-node variant is not uniformly slower than the
    # few-node variant across workloads.
    slower = sum(
        1
        for w in comparison.workloads()
        if comparison.overhead_percent(w, "siloz-512", baseline="siloz-1024")[0]
        > comparison.overhead_percent(w, "siloz-2048", baseline="siloz-1024")[0]
    )
    assert 0 < slower < len(comparison.workloads()), "unexpected monotone trend"
