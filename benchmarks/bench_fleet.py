"""Fleet trajectory points: parallel scaling, pool engines, cluster scale.

Three recorded entries in ``BENCH_fleet.json`` at the repo root:

- ``fleet_campaign`` — the same small campaign at ``workers=1`` vs
  ``workers=N``; merged reports must be **bit-identical** (per-host
  seeds derive from host ids, never pool order) and the ≥2× speedup
  target is enforced when the machine can express it.
- ``fleet_pool`` — the persistent warm worker pool vs the per-task
  spawn path at the same worker count; digests must match (pool mode
  is an execution detail) and both wall times are recorded so a pool
  regression is visible run-over-run.
- ``fleet_cluster`` — the cluster-scale campaign (1000 hosts / 100k VM
  arrivals through sharded admission over logical capacity twins) at
  ``workers=1`` scalar, ``workers=N`` scalar, and ``workers=N``
  vectorized; all three merge digests must be bit-identical, and the
  best hosts/sec throughput plus driver peak RSS are recorded (gated by
  ``check_trajectory.py --key fleet_cluster --field hosts_per_sec``).

The ≥2× speedup target only makes sense with cores to scale onto, so
the assertion is gated on ``os.cpu_count() >= WORKERS``: a 1-core dev
box records its honest (≈1×) measurement without failing, while CI's
multi-core runners enforce the target.  The identical-results assertion
is unconditional — it is the half of the contract that must hold
everywhere.

``REPRO_BENCH_CLUSTER_HOSTS`` / ``REPRO_BENCH_CLUSTER_VMS`` shrink the
cluster leg for local iteration; the committed point and the nightly
run use the full 1000 / 100000 defaults.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.fleet import (
    CampaignConfig,
    ClusterConfig,
    run_campaign,
    run_cluster_campaign,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
BENCH_JSON = REPO_ROOT / "BENCH_fleet.json"

#: Scaling target: parallel workers the bench compares against serial.
WORKERS = 4
#: Minimum acceptable scaling speedup when the machine can express it.
SCALING_TARGET = 2.0
#: Campaign sized so per-host work dominates placement + pool overhead.
HOSTS = 8
VMS = 24
BUDGET = 8

#: Cluster-scale leg (overridable for local iteration only — the
#: recorded trajectory point must stay at full scale to be comparable).
CLUSTER_HOSTS = int(os.environ.get("REPRO_BENCH_CLUSTER_HOSTS", "1000"))
CLUSTER_VMS = int(os.environ.get("REPRO_BENCH_CLUSTER_VMS", "100000"))
CLUSTER_SHARDS = 16
CLUSTER_BUDGET = 2

_RESULTS: dict = {
    "bench": "fleet",
    "note": "parallel fleet campaign (workers=N) vs serial (workers=1); "
    "merged reports must be bit-identical",
}


def _record(key: str, payload: dict) -> None:
    _RESULTS[key] = payload
    BENCH_JSON.write_text(json.dumps(_RESULTS, indent=2) + "\n")


def _banner(title: str) -> str:
    rule = "=" * len(title)
    return f"\n{rule}\n{title}\n{rule}"


def _campaign(workers: int, pool: str = "persistent"):
    config = CampaignConfig(
        hosts=HOSTS, vms=VMS, budget=BUDGET, workers=workers, seed=7
    )
    t0 = time.perf_counter()
    report = run_campaign(config, pool=pool)
    return time.perf_counter() - t0, report


def _cluster(workers: int, backend: str):
    config = ClusterConfig(
        hosts=CLUSTER_HOSTS,
        vms=CLUSTER_VMS,
        shards=CLUSTER_SHARDS,
        budget=CLUSTER_BUDGET,
        workers=workers,
        backend=backend,
        seed=7,
        policy="first-fit",
    )
    return run_cluster_campaign(config)


def test_fleet_scaling() -> None:
    cpus = os.cpu_count() or 1
    serial_s, serial = _campaign(1)
    parallel_s, parallel = _campaign(WORKERS)

    assert serial.digest() == parallel.digest(), (
        "workers=1 and workers=%d merged reports diverged" % WORKERS
    )
    assert serial.hosts_failed == 0, "campaign had host failures"

    speedup = serial_s / parallel_s
    enforced = cpus >= WORKERS
    print(_banner(f"Fleet: {HOSTS}-host campaign, workers=1 vs workers={WORKERS}"))
    print(
        f"serial {serial_s * 1e3:8.1f} ms   parallel {parallel_s * 1e3:8.1f} ms"
        f"   speedup {speedup:.2f}x "
        f"(target >= {SCALING_TARGET}x, "
        f"{'enforced' if enforced else f'not enforced: only {cpus} CPU(s)'})"
    )
    payload = {
        "serial_seconds": round(serial_s, 6),
        "parallel_seconds": round(parallel_s, 6),
        "workers": WORKERS,
        "cpu_count": cpus,
        "target": SCALING_TARGET,
        "target_enforced": enforced,
        "identical_results": True,
        "hosts": HOSTS,
        "vms": VMS,
        "merge_digest": serial.digest(),
    }
    if cpus > 1:
        payload["speedup"] = round(speedup, 3)
    else:
        # A 1-core box cannot measure scaling at all — its ~1x "speedup"
        # is pure pool overhead, and recording it would poison the
        # trajectory baseline for real runners.  Write a loud skip
        # marker instead; check_trajectory --key passes it through
        # without gating.
        payload["skipped"] = f"single-core runner ({cpus} cpu)"
    _record("fleet_campaign", payload)
    if enforced:
        assert speedup >= SCALING_TARGET, (
            f"fleet scaling below target ({speedup:.2f}x < {SCALING_TARGET}x "
            f"at {WORKERS} workers on {cpus} CPUs); see BENCH_fleet.json"
        )
    else:
        # One loud, grep-able line: the CI fleet-smoke job lifts it into
        # the job summary so a skipped target never passes silently.
        print(
            f"WARNING: fleet scaling target SKIPPED — only {cpus} CPU(s) "
            f"(< {WORKERS} workers); speedup {speedup:.2f}x was NOT enforced "
            f"against the {SCALING_TARGET}x target (target_enforced: false)"
        )


def test_fleet_pool_engines() -> None:
    """Persistent warm pool vs per-task spawn, same campaign, same
    worker count: digests must match (pool mode is an execution detail,
    scrubbed from nothing — simply never hashed) and both wall times
    are recorded so a pool-engine regression is visible run-over-run."""
    persistent_s, persistent = _campaign(WORKERS, "persistent")
    spawn_s, spawn = _campaign(WORKERS, "spawn")

    assert persistent.digest() == spawn.digest(), (
        "persistent-pool and spawn merged reports diverged"
    )
    ratio = spawn_s / persistent_s
    print(_banner(f"Fleet: pool engines at workers={WORKERS}"))
    print(
        f"persistent {persistent_s * 1e3:8.1f} ms   "
        f"spawn {spawn_s * 1e3:8.1f} ms   spawn/persistent {ratio:.2f}x"
    )
    _record(
        "fleet_pool",
        {
            "persistent_seconds": round(persistent_s, 6),
            "spawn_seconds": round(spawn_s, 6),
            "spawn_over_persistent": round(ratio, 3),
            "workers": WORKERS,
            "identical_results": True,
            "merge_digest": persistent.digest(),
        },
    )


def test_fleet_cluster() -> None:
    """Cluster scale: sharded admission over logical twins + streaming
    merge, digest-identical across worker counts AND backends, with the
    best hosts/sec recorded as the gated trajectory metric."""
    cpus = os.cpu_count() or 1
    runs = {
        "serial_scalar": _cluster(1, "scalar"),
        f"w{WORKERS}_scalar": _cluster(WORKERS, "scalar"),
        f"w{WORKERS}_vectorized": _cluster(WORKERS, "vectorized"),
    }
    digests = {name: r.merge_digest for name, r in runs.items()}
    assert len(set(digests.values())) == 1, (
        f"cluster merge digests diverged across worker counts/backends: {digests}"
    )
    for name, r in runs.items():
        assert r.hosts_failed == 0, f"cluster run {name} had host failures"

    best = max(runs.values(), key=lambda r: r.hosts_per_sec)
    full_scale = CLUSTER_HOSTS >= 1000 and CLUSTER_VMS >= 100_000
    print(_banner(
        f"Fleet: cluster campaign, {CLUSTER_HOSTS} hosts / "
        f"{CLUSTER_VMS} VM arrivals, {CLUSTER_SHARDS} shards"
    ))
    for name, r in runs.items():
        print(
            f"{name:16s} {r.elapsed_s:7.1f} s   {r.hosts_per_sec:7.1f} hosts/s"
            f"   peak rss {r.peak_rss_mib:6.0f} MiB"
        )
    payload = {
        "hosts": CLUSTER_HOSTS,
        "vms": CLUSTER_VMS,
        "shards": CLUSTER_SHARDS,
        "budget": CLUSTER_BUDGET,
        "workers": WORKERS,
        "cpu_count": cpus,
        "runs": {
            name: {
                "elapsed_seconds": round(r.elapsed_s, 3),
                "hosts_per_sec": round(r.hosts_per_sec, 3),
                "peak_rss_mib": round(r.peak_rss_mib, 1),
            }
            for name, r in runs.items()
        },
        "admitted": runs["serial_scalar"].summary["admitted"],
        "pruned_arrivals": runs["serial_scalar"].pruned_arrivals,
        "identical_results": True,
        "merge_digest": best.merge_digest,
    }
    if full_scale:
        payload["hosts_per_sec"] = round(best.hosts_per_sec, 3)
    else:
        # A scaled-down local run records its shape but must not poison
        # the full-scale trajectory baseline with incomparable numbers.
        payload["skipped"] = (
            f"reduced scale ({CLUSTER_HOSTS} hosts / {CLUSTER_VMS} vms); "
            "hosts_per_sec only comparable at 1000/100000"
        )
    _record("fleet_cluster", payload)


if __name__ == "__main__":
    test_fleet_scaling()
    test_fleet_pool_engines()
    test_fleet_cluster()
