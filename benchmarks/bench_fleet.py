"""Fleet trajectory point: parallel campaign execution vs serial.

Runs the same fleet campaign twice — ``workers=1`` and ``workers=N``
(N = the scaling target's worker count) — asserts the merged reports
are **bit-identical** (the determinism contract: per-host seeds derive
from host ids, never pool order), then records wall times and the
scaling speedup to ``BENCH_fleet.json`` at the repo root.

The ≥2× speedup target only makes sense with cores to scale onto, so
the assertion is gated on ``os.cpu_count() >= WORKERS``: a 1-core dev
box records its honest (≈1×) measurement without failing, while CI's
multi-core runners enforce the target.  The identical-results assertion
is unconditional — it is the half of the contract that must hold
everywhere.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.fleet import CampaignConfig, run_campaign

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
BENCH_JSON = REPO_ROOT / "BENCH_fleet.json"

#: Scaling target: parallel workers the bench compares against serial.
WORKERS = 4
#: Minimum acceptable scaling speedup when the machine can express it.
SCALING_TARGET = 2.0
#: Campaign sized so per-host work dominates placement + pool overhead.
HOSTS = 8
VMS = 24
BUDGET = 8

_RESULTS: dict = {
    "bench": "fleet",
    "note": "parallel fleet campaign (workers=N) vs serial (workers=1); "
    "merged reports must be bit-identical",
}


def _record(key: str, payload: dict) -> None:
    _RESULTS[key] = payload
    BENCH_JSON.write_text(json.dumps(_RESULTS, indent=2) + "\n")


def _banner(title: str) -> str:
    rule = "=" * len(title)
    return f"\n{rule}\n{title}\n{rule}"


def _campaign(workers: int):
    config = CampaignConfig(
        hosts=HOSTS, vms=VMS, budget=BUDGET, workers=workers, seed=7
    )
    t0 = time.perf_counter()
    report = run_campaign(config)
    return time.perf_counter() - t0, report


def test_fleet_scaling() -> None:
    cpus = os.cpu_count() or 1
    serial_s, serial = _campaign(1)
    parallel_s, parallel = _campaign(WORKERS)

    assert serial.digest() == parallel.digest(), (
        "workers=1 and workers=%d merged reports diverged" % WORKERS
    )
    assert serial.hosts_failed == 0, "campaign had host failures"

    speedup = serial_s / parallel_s
    enforced = cpus >= WORKERS
    print(_banner(f"Fleet: {HOSTS}-host campaign, workers=1 vs workers={WORKERS}"))
    print(
        f"serial {serial_s * 1e3:8.1f} ms   parallel {parallel_s * 1e3:8.1f} ms"
        f"   speedup {speedup:.2f}x "
        f"(target >= {SCALING_TARGET}x, "
        f"{'enforced' if enforced else f'not enforced: only {cpus} CPU(s)'})"
    )
    payload = {
        "serial_seconds": round(serial_s, 6),
        "parallel_seconds": round(parallel_s, 6),
        "workers": WORKERS,
        "cpu_count": cpus,
        "target": SCALING_TARGET,
        "target_enforced": enforced,
        "identical_results": True,
        "hosts": HOSTS,
        "vms": VMS,
        "merge_digest": serial.digest(),
    }
    if cpus > 1:
        payload["speedup"] = round(speedup, 3)
    else:
        # A 1-core box cannot measure scaling at all — its ~1x "speedup"
        # is pure pool overhead, and recording it would poison the
        # trajectory baseline for real runners.  Write a loud skip
        # marker instead; check_trajectory --key passes it through
        # without gating.
        payload["skipped"] = f"single-core runner ({cpus} cpu)"
    _record("fleet_campaign", payload)
    if enforced:
        assert speedup >= SCALING_TARGET, (
            f"fleet scaling below target ({speedup:.2f}x < {SCALING_TARGET}x "
            f"at {WORKERS} workers on {cpus} CPUs); see BENCH_fleet.json"
        )
    else:
        # One loud, grep-able line: the CI fleet-smoke job lifts it into
        # the job summary so a skipped target never passes silently.
        print(
            f"WARNING: fleet scaling target SKIPPED — only {cpus} CPU(s) "
            f"(< {WORKERS} workers); speedup {speedup:.2f}x was NOT enforced "
            f"against the {SCALING_TARGET}x target (target_enforced: false)"
        )


if __name__ == "__main__":
    test_fleet_scaling()
