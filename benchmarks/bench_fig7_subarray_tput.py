"""Figure 7 (paper §7.4): subarray-size sensitivity, throughput.

The throughput companion of Figure 6: memcached/mysql/MLC bandwidth on
Siloz-512/-1024/-2048 analogues, normalised to Siloz-1024.
"""

from conftest import banner, show_figure

from repro.eval import perf_experiment, siloz_system
from repro.workloads import THROUGHPUT_SUITES

TRIALS = 5
ACCESSES = 12_000


def _run():
    systems = [
        siloz_system(
            name="siloz-1024", rows_per_subarray=128, seed=70, backend="vectorized"
        ),
        siloz_system(
            name="siloz-512", rows_per_subarray=64, seed=70, backend="vectorized"
        ),
        siloz_system(
            name="siloz-2048", rows_per_subarray=256, seed=70, backend="vectorized"
        ),
    ]
    return perf_experiment(
        systems,
        list(THROUGHPUT_SUITES),
        metric="bandwidth",
        trials=TRIALS,
        accesses=ACCESSES,
    )


def test_fig7_subarray_size_throughput(benchmark):
    comparison = benchmark.pedantic(_run, rounds=1, iterations=1)
    print(banner("Figure 7: Siloz-1024-normalized throughput (%)"))
    show_figure(comparison, name="fig7_subarray_tput", baseline="siloz-1024")
    r512 = comparison.geomean_ratio("siloz-512", baseline="siloz-1024")
    r2048 = comparison.geomean_ratio("siloz-2048", baseline="siloz-1024")
    print(f"geomean ratios: siloz-512={r512:.5f} siloz-2048={r2048:.5f}")
    assert abs(r512 - 1.0) < 0.01
    assert abs(r2048 - 1.0) < 0.01
