"""Table 3 (paper §7.1): hammering containment across DIMMs A-F.

An extended-Blacksmith campaign runs from inside a Siloz guest on six
simulated DIMM susceptibility profiles.  The reproduced table reports,
per DIMM, whether bit flips were observed inside the attacker's subarray
group (expected: yes — the attack itself works) and outside it
(expected: NO, on every DIMM).  A baseline row shows the contrast: the
same campaign corrupts a co-located victim VM.
"""

from conftest import banner

from repro import obs
from repro.attack import attack_from_vm
from repro.core import SilozHypervisor, audit_hypervisor
from repro.dram.disturbance import DisturbanceProfile
from repro.eval.report import render_table
from repro.hv import BaselineHypervisor, Machine, VmSpec
from repro.units import KiB, MiB


def _siloz_campaign(dimm: DisturbanceProfile, seed: int):
    # Batched engine: identical results to scalar (tests/test_differential.py),
    # measured >=2x faster in BENCH_engine.json.
    hv = SilozHypervisor.boot(Machine.small(seed=seed, profile=dimm, backend="batched"))
    attacker = hv.create_vm(VmSpec(name="attacker", memory_bytes=2 * MiB))
    hv.create_vm(VmSpec(name="victim", memory_bytes=2 * MiB))
    outcome = attack_from_vm(hv, attacker, seed=seed, pattern_budget=35)
    assert audit_hypervisor(hv) == []
    return outcome


def _run_fleet():
    rows = []
    outcomes = []
    for i, dimm in enumerate(DisturbanceProfile.dimm_fleet()):
        outcome = _siloz_campaign(dimm, seed=100 + i)
        outcomes.append((dimm.name, outcome))
        rows.append(
            [
                dimm.name,
                "yes" if outcome.flips_inside else "no",
                "NO" if not outcome.flips_escaped else "YES(!)",
                outcome.report.flip_count,
                outcome.report.activations,
            ]
        )
    return rows, outcomes


def test_table3_siloz_containment(benchmark):
    obs.enable(reset=True)
    try:
        rows, outcomes = benchmark.pedantic(_run_fleet, rounds=1, iterations=1)
        snapshot = obs.metrics_snapshot()
    finally:
        obs.disable()
    print(banner("Table 3: Siloz contains bit flips to the hammering domain"))
    print(
        render_table(
            [
                "DIMM",
                "flips inside subarray group",
                "flips outside subarray group",
                "total flips",
                "activations",
            ],
            rows,
            metrics=snapshot,
        )
    )
    for name, outcome in outcomes:
        assert outcome.report.flip_count > 0, f"DIMM {name}: fuzzer found no flips"
        assert outcome.contained, f"DIMM {name}: containment violated"
        assert outcome.victim_flips == {}, f"DIMM {name}: victim corrupted"


def _baseline_contrast():
    hv = BaselineHypervisor(
        Machine.small(seed=200, backend="batched"), backing_page_bytes=64 * KiB
    )
    attacker = hv.create_vm(VmSpec(name="attacker", memory_bytes=2 * MiB))
    hv.create_vm(VmSpec(name="victim", memory_bytes=2 * MiB))
    return attack_from_vm(hv, attacker, seed=200, pattern_budget=80)


def test_table3_baseline_contrast(benchmark):
    outcome = benchmark.pedantic(_baseline_contrast, rounds=1, iterations=1)
    print(banner("Baseline contrast: same campaign on unmodified Linux/KVM"))
    print(outcome.summary())
    assert outcome.report.flip_count > 0
    assert outcome.victim_flips, "baseline should corrupt the co-located victim"
