"""Shared helpers for the per-table/per-figure benchmarks.

Every benchmark prints its reproduced table/figure (run pytest with
``-s`` to stream them) and asserts the paper's qualitative claim, so
``pytest benchmarks/ --benchmark-only`` doubles as the repro check.
"""

import pathlib

import pytest

from repro.dram.geometry import DRAMGeometry

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def banner(title: str) -> str:
    rule = "=" * len(title)
    return f"\n{rule}\n{title}\n{rule}"


def show_figure(
    comparison,
    *,
    name: str,
    baseline: str = "baseline",
    title: str = "",
    metrics=None,
):
    """Print table + bar chart and archive the raw data as JSON.

    *metrics* is an optional :func:`repro.obs.metrics_snapshot` dict;
    when given, the figure carries a provenance footer of the counters
    recorded while the experiment ran."""
    from repro.eval.figures import comparison_to_json, render_bars
    from repro.eval.report import render_figure

    print(render_figure(comparison, baseline=baseline, title=title, metrics=metrics))
    print()
    print(render_bars(comparison, baseline=baseline))
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(comparison_to_json(comparison, baseline=baseline))
    print(f"\nraw data archived: {path}")


@pytest.fixture(scope="session")
def paper_geom():
    return DRAMGeometry.paper_default()


@pytest.fixture(scope="session", autouse=True)
def print_system_config():
    """Table 2 analogue: state what the simulated host is."""
    geom = DRAMGeometry.paper_default()
    print(banner("Simulated system configuration (paper Table 2 analogue)"))
    print(geom.describe())
    print(
        "Security benches run on the bit-level small machine; performance "
        "benches on the 32-bank medium machine (see DESIGN.md)."
    )
    yield
