"""Bake-off trajectory point: rival mitigations on identical fleets.

Runs the ``none`` / ``para`` / ``siloz`` bake-off twice — scalar and
vectorized backends — asserts the reports are **bit-identical** (the
differential-engine contract extended through the mitigation layer),
asserts the headline security result holds (Siloz contains the seed-7
attack that corrupts a victim VM on the unmitigated baseline), then
records wall times, the backend speedup, and the comparison metrics to
``BENCH_bakeoff.json`` at the repo root.

``check_trajectory.py --key bakeoff_campaign`` gates the recorded
speedup run-over-run; ``--field siloz_loss_pct --direction down`` and
``--field para_refreshes_per_kact --direction down`` gate the
deterministic comparison metrics (they must never silently grow).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.mitigations.bakeoff import BakeoffConfig, run_bakeoff

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
BENCH_JSON = REPO_ROOT / "BENCH_bakeoff.json"

#: The sweep: unmitigated baseline, probabilistic refresh, Siloz.
MITIGATIONS = ("none", "para", "siloz")
#: Seed where the baseline reliably leaks victim flips at BUDGET.
SEED = 7
HOSTS = 4
VMS = 8
BUDGET = 150
WORKERS = 2

_RESULTS: dict = {
    "bench": "bakeoff",
    "note": "none/para/siloz bake-off, scalar vs vectorized backend; "
    "reports must be bit-identical and siloz must contain the seed-7 "
    "attack that leaks on the baseline",
}


def _record(key: str, payload: dict) -> None:
    _RESULTS[key] = payload
    BENCH_JSON.write_text(json.dumps(_RESULTS, indent=2) + "\n")


def _banner(title: str) -> str:
    rule = "=" * len(title)
    return f"\n{rule}\n{title}\n{rule}"


def _bakeoff(backend: str):
    config = BakeoffConfig(
        mitigations=MITIGATIONS,
        hosts=HOSTS,
        vms=VMS,
        seed=SEED,
        budget=BUDGET,
        backend=backend,
        workers=WORKERS,
    )
    t0 = time.perf_counter()
    report = run_bakeoff(config)
    return time.perf_counter() - t0, report


def test_bakeoff_campaign() -> None:
    scalar_s, scalar = _bakeoff("scalar")
    vector_s, vector = _bakeoff("vectorized")

    assert scalar.digest() == vector.digest(), (
        "scalar and vectorized bake-off reports diverged"
    )
    assert scalar.clean, "a bake-off campaign had unplanned failures"

    none_c = scalar.entry("none")["containment"]
    para_c = scalar.entry("para")["containment"]
    siloz_c = scalar.entry("siloz")["containment"]
    # The headline: the baseline attacker corrupts a victim VM, Siloz
    # (subarray-group isolation + guard rows) fully contains it, and
    # PARA — probabilistic, not spatial — lands in between.
    assert none_c["victim_flips"] > 0, (
        f"seed {SEED} baseline no longer leaks victim flips at budget "
        f"{BUDGET}; the bake-off lost its discriminating scenario"
    )
    assert siloz_c["containment_rate"] == 1.0 and siloz_c["victim_flips"] == 0, (
        f"siloz failed containment: {siloz_c}"
    )
    assert para_c["victim_flips"] <= none_c["victim_flips"], (
        f"para ({para_c['victim_flips']} victim flips) worse than the "
        f"unmitigated baseline ({none_c['victim_flips']})"
    )

    siloz_loss_pct = 100.0 * scalar.entry("siloz")["capacity"]["loss_fraction"]
    para_rpk = scalar.entry("para")["overhead"]["refreshes_per_kact"]
    speedup = scalar_s / vector_s
    print(_banner(
        f"Bake-off: {'/'.join(MITIGATIONS)} on {HOSTS} hosts, "
        f"scalar vs vectorized"
    ))
    print(scalar.render_table())
    print(
        f"scalar {scalar_s * 1e3:8.1f} ms   vectorized {vector_s * 1e3:8.1f} ms"
        f"   speedup {speedup:.2f}x   identical reports: yes"
    )
    _record(
        "bakeoff_campaign",
        {
            "scalar_seconds": round(scalar_s, 6),
            "vectorized_seconds": round(vector_s, 6),
            "speedup": round(speedup, 3),
            "cpu_count": os.cpu_count() or 1,
            "identical_results": True,
            "hosts": HOSTS,
            "vms": VMS,
            "seed": SEED,
            "budget": BUDGET,
            "digest": scalar.digest(),
            "siloz_loss_pct": round(siloz_loss_pct, 4),
            "para_refreshes_per_kact": para_rpk,
            "containment_rate": {
                "none": none_c["containment_rate"],
                "para": para_c["containment_rate"],
                "siloz": siloz_c["containment_rate"],
            },
            "victim_flips": {
                "none": none_c["victim_flips"],
                "para": para_c["victim_flips"],
                "siloz": siloz_c["victim_flips"],
            },
        },
    )


if __name__ == "__main__":
    test_bakeoff_campaign()
