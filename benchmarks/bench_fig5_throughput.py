"""Figure 5 (paper §7.3): baseline-normalised throughput.

memcached, SysBench mySQL, and the Intel MLC bandwidth family
(all-reads, 3:1, 2:1, 1:1, STREAM-triad-like), reported as
baseline-normalised throughput overhead with 95 % CIs.  Paper claim:
within ±0.5 % of baseline mean throughput.
"""

from conftest import banner, show_figure

from repro import obs
from repro.eval import baseline_system, perf_experiment, siloz_system
from repro.workloads import THROUGHPUT_SUITES

TRIALS = 5
ACCESSES = 12_000


def _run():
    # Vectorized pipeline: bit-identical to scalar (tests/test_differential.py),
    # ≥20x faster end-to-end (BENCH_engine.json "fig5_e2e").
    systems = [
        baseline_system(seed=50, backend="vectorized"),
        siloz_system(seed=50, backend="vectorized"),
    ]
    return perf_experiment(
        systems,
        list(THROUGHPUT_SUITES),
        metric="bandwidth",
        trials=TRIALS,
        accesses=ACCESSES,
    )


def test_fig5_throughput(benchmark):
    obs.enable(reset=True)
    try:
        comparison = benchmark.pedantic(_run, rounds=1, iterations=1)
        snapshot = obs.metrics_snapshot()
    finally:
        obs.disable()
    print(banner("Figure 5: baseline-normalized throughput overhead (%)"))
    show_figure(
        comparison,
        name="fig5_throughput",
        title="paper: |mean| < 0.5%",
        metrics=snapshot,
    )
    ratio = comparison.geomean_ratio("siloz")
    print(f"geomean(siloz/baseline) = {ratio:.5f}")
    assert abs(ratio - 1.0) < 0.01
    for workload in comparison.workloads():
        mean_pct, _ = comparison.overhead_percent(workload, "siloz")
        assert abs(mean_pct) < 3.0, f"{workload}: {mean_pct:+.2f}%"
