"""A2: guard-margin ablation — why b=32, o=12 (paper §5.4).

The paper reserves b row groups with the EPT row at offset o, chosen so
both guard margins exceed the worst-case blast radius (with slack for
half-row remaps).  This ablation sweeps the EPT offset inside a fixed
block and hammers from the nearest allocatable rows on *both* sides: the
EPT row flips exactly when a margin is smaller than the blast radius,
and never once both margins cover it — empirically justifying the
margin rule `SilozConfig` enforces.
"""

from conftest import banner

from repro.dram.disturbance import DisturbanceProfile
from repro.dram.geometry import DRAMGeometry
from repro.dram.module import SimulatedDram
from repro.eval.report import render_table

GEOM = DRAMGeometry.small(rows_per_bank=512, rows_per_subarray=64)
BLOCK_START = 16
BLOCK_ROWS = 8
ROUNDS = 5000


def _flips_in_ept_row(offset: int, seed: int) -> int:
    """Reserve rows [16, 24), put the EPT row at 16+offset, hammer the
    nearest usable rows (15 below, 24 above); count EPT-row flips."""
    dram = SimulatedDram(
        GEOM,
        profile=DisturbanceProfile.test_scale(threshold_mean=48.0),
        trr_config=None,
        seed=seed,
    )
    ept_row = BLOCK_START + offset
    aggressors = [BLOCK_START - 1, BLOCK_START - 2, BLOCK_START + BLOCK_ROWS,
                  BLOCK_START + BLOCK_ROWS + 1]
    for _ in range(ROUNDS):
        for row in aggressors:
            dram.activate(0, 0, row)
    return sum(1 for f in dram.flips_log if f.row == ept_row)


def _sweep():
    radius = DisturbanceProfile.test_scale().blast_radius
    rows = []
    outcomes = {}
    for offset in range(BLOCK_ROWS):
        below = offset
        above = BLOCK_ROWS - offset - 1
        flips = _flips_in_ept_row(offset, seed=offset)
        safe_by_rule = below >= radius and above >= radius
        outcomes[offset] = (flips, safe_by_rule)
        rows.append(
            [
                offset,
                below,
                above,
                flips,
                "ok" if safe_by_rule else "TOO NARROW",
            ]
        )
    return rows, outcomes, radius


def test_guard_margin_sweep(benchmark):
    rows, outcomes, radius = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print(banner(f"A2: EPT offset sweep in an {BLOCK_ROWS}-row-group block "
                 f"(blast radius {radius})"))
    print(
        render_table(
            ["offset o", "guards below", "guards above", "EPT-row flips",
             "margin rule"],
            rows,
        )
    )
    for offset, (flips, safe) in outcomes.items():
        if safe:
            assert flips == 0, f"offset {offset}: rule said safe but flipped"
    # The rule is not vacuous: at least one narrow offset actually flips.
    assert any(flips > 0 for flips, safe in outcomes.values() if not safe)
    # And the paper's o/b ratio (12/32 -> offset 3 in an 8-block) is safe.
    paper_like = BLOCK_ROWS * 12 // 32
    assert outcomes[paper_like][0] == 0
