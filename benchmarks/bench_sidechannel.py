"""B1 (paper §8.4): what subarray groups do and don't isolate.

Siloz prevents inter-VM Rowhammer; it does not close DRAM *timing* side
channels, because subarray groups share banks by design.  The paper's
§8.4 proposes managing banks/ranks/channels as additional isolation
domains via the same logical-NUMA machinery.  This bench quantifies the
DRAMA row-buffer channel under both regimes.
"""

from conftest import banner

from repro.attack.sidechannel import drama_probe
from repro.eval.report import render_table


def _run():
    return {
        "shared bank (Siloz default)": drama_probe(shared_bank=True),
        "bank-isolated domains (§8.4)": drama_probe(shared_bank=False),
    }


def test_drama_side_channel(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print(banner("B1: DRAMA row-buffer timing channel (§8.4)"))
    print(
        render_table(
            ["configuration", "probe idle (ns)", "probe w/ victim (ns)", "verdict"],
            [
                [
                    name,
                    f"{r.idle_latency_ns:.2f}",
                    f"{r.active_latency_ns:.2f}",
                    "LEAK" if r.leak_detected else "closed",
                ]
                for name, r in results.items()
            ],
        )
    )
    assert results["shared bank (Siloz default)"].leak_detected
    assert not results["bank-isolated domains (§8.4)"].leak_detected
