"""Table 1 (paper §6): DDR4 address mirroring and inversion.

Regenerates the bit-transformation table for every (rank parity, side)
combination and verifies the paper's isolation analysis around it:
power-of-2 subarray sizes survive the transforms, others do not.
"""

from conftest import banner

from repro.dram.transforms import (
    TransformConfig,
    subarray_isolation_preserved,
    transform_table,
)
from repro.eval.report import render_table


def _render_table1() -> str:
    table = transform_table(max_bit=10)
    headers = ["rank", "side"] + [f"b{i}" for i in range(11)]
    rows = [[entry[h] for h in headers] for entry in table]
    return render_table(headers, rows, title="Table 1: DDR4 mirroring + inversion")


def test_table1_transform_table(benchmark):
    text = benchmark(_render_table1)
    print(banner("Table 1 reproduction"))
    print(text)
    # Spot checks from the paper's caption: odd ranks mirror <b3,b4>,
    # B sides invert, even-rank A-side is identity.
    assert "!b" in text
    table = transform_table()
    even_a = table[0]
    assert all(even_a[f"b{i}"] == f"b{i}" for i in range(11))
    odd_a = next(r for r in table if r["rank"] == "odd" and r["side"] == "A")
    assert odd_a["b3"] == "b4" and odd_a["b4"] == "b3"


def test_table1_isolation_consequences(benchmark):
    def analyse():
        out = {}
        for size in (512, 768, 1024, 1536, 2048):
            out[size] = subarray_isolation_preserved(size, TransformConfig())
        return out

    results = benchmark(analyse)
    print(banner("Isolation preserved under mirroring+inversion (§6)"))
    print(
        render_table(
            ["subarray rows", "isolation preserved"],
            [[k, "yes" if v else "NO"] for k, v in results.items()],
        )
    )
    assert results[512] and results[1024] and results[2048]
    assert not results[768] and not results[1536]
