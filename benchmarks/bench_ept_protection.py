"""§7.1 "EPT Bit Flip Prevention" (paper Table 3's companion study).

Reproduces the paper's protected-vs-unprotected experiment: hammering
around Siloz's guard-protected EPT block never flips EPT rows, while the
same effort against unprotected rows in the same subarray group does
flip bits.  A third scenario shows the unprotected-EPT attack succeeding
when protection is disabled.
"""

from conftest import banner

from repro.attack.hammer import hammer_pattern_rows
from repro.core import EptProtection, SilozConfig, SilozHypervisor
from repro.core.groups import ept_block_rows, ept_rows
from repro.eval.report import render_table
from repro.hv import Machine, VmSpec
from repro.units import MiB

ROUNDS = 5000


def _protected_vs_unprotected():
    hv = SilozHypervisor.boot(Machine.small(seed=300))
    hv.create_vm(VmSpec(name="vm", memory_bytes=2 * MiB))
    geom = hv.machine.geom
    dram = hv.machine.dram
    block = ept_block_rows(hv.config, geom)
    protected = set(ept_rows(hv.config, geom))

    # (a) hammer the closest allocatable rows to the protected block;
    hammer_pattern_rows(dram, 0, 0, [block.stop, block.stop + 2], rounds=ROUNDS)
    # (b) hammer unprotected rows deep in the same group's next subarray.
    unprotected_base = geom.rows_per_subarray + 16
    hammer_pattern_rows(
        dram, 0, 0, [unprotected_base, unprotected_base + 2], rounds=ROUNDS
    )

    flipped = {f.row for f in dram.flips_log}
    return {
        "ept_rows_flipped": sorted(flipped & protected),
        "unprotected_flipped": sorted(
            r for r in flipped if unprotected_base - 4 <= r <= unprotected_base + 6
        ),
        "total_flips": len(dram.flips_log),
    }


def test_ept_guard_rows_prevent_flips(benchmark):
    result = benchmark.pedantic(_protected_vs_unprotected, rounds=1, iterations=1)
    print(banner("EPT bit-flip prevention (§7.1)"))
    print(
        render_table(
            ["rows", "observed bit flips?"],
            [
                ["guard-protected EPT rows (b=%d-style block)" % 32,
                 "NO" if not result["ept_rows_flipped"] else "YES(!)"],
                ["unprotected rows, same subarray group",
                 "yes" if result["unprotected_flipped"] else "no"],
            ],
        )
    )
    assert result["total_flips"] > 0
    assert not result["ept_rows_flipped"], "guarded EPT rows must never flip"
    assert result["unprotected_flipped"], "control rows must flip"


def _unprotected_ept_attack():
    machine = Machine.small(seed=301)
    cfg = SilozConfig.scaled_for(machine.geom, ept_protection=EptProtection.NONE)
    hv = SilozHypervisor.boot(machine, cfg)
    vm = hv.create_vm(VmSpec(name="vm", memory_bytes=2 * MiB))
    dram = hv.machine.dram
    page = vm.ept.table_pages[-1]
    media = dram.mapping.decode(page)
    bank = media.socket_bank_index(machine.geom)
    rows_per_bank = machine.geom.rows_per_bank
    aggressors = [
        r for r in (media.row - 1, media.row + 1) if 0 <= r < rows_per_bank
    ]
    hammer_pattern_rows(dram, 0, bank, aggressors, rounds=ROUNDS)
    return dram.flip_bits_at(0, bank, media.row)


def test_unprotected_ept_rows_are_attackable(benchmark):
    flipped_bits = benchmark.pedantic(_unprotected_ept_attack, rounds=1, iterations=1)
    print(banner("Control: EPT rows WITHOUT guard rows take flips"))
    print(f"bit flips landed in an EPT table page: {len(flipped_bits)}")
    assert flipped_bits, "without protection the EPT row must be flippable"
