"""O1/O2: the paper's DRAM-overhead arithmetic (§3, §5.4, §6).

Reproduces every reservation number the paper quotes:

- EPT + guard rows cost ~0.024 % of each bank (b=32 rows of 8 KiB per
  1 GiB bank);
- all EPTs fit in one row group per socket under the deployment
  conditions (no page sharing, contiguous 2 MiB-backed guests);
- non-power-of-2 subarray handling costs ~1.56 % (512 rows) down to
  ~0.39 % (2048) whether via scrambling-boundary removal or artificial
  guarded groups;
- ZebRAM-style whole-memory guard rows cost 50 % (1:1) to 80 % (4:1),
  versus Siloz's ~98.5-100 % of DRAM left usable.
"""

from conftest import banner

from repro.core import SilozConfig
from repro.dram.transforms import (
    artificial_group_reservation,
    scrambling_offline_fraction,
    zebram_overhead,
)
from repro.ept import ept_page_count
from repro.eval.report import render_table
from repro.units import GiB, PAGE_4K


def test_ept_guard_reservation_fraction(benchmark, paper_geom):
    cfg = SilozConfig.paper_default()
    frac = benchmark(lambda: cfg.reserved_fraction(paper_geom))
    print(banner("O1: EPT + guard-row reservation (§5.4)"))
    print(
        f"b={cfg.ept_block_row_groups} rows x {paper_geom.row_bytes} B "
        f"per {paper_geom.bank_bytes // GiB} GiB bank = {frac * 100:.4f}% of DRAM"
    )
    assert abs(frac - 0.00024414) < 1e-6  # ~0.024 %


def test_all_epts_fit_one_row_group(benchmark, paper_geom):
    def count():
        # A socket fully packed with the paper's 160 GiB-class guests.
        return ept_page_count(192 * GiB)

    pages = benchmark(count)
    capacity = paper_geom.row_group_bytes // PAGE_4K
    print(banner("O1: EPTs per socket vs one row group (§5.4)"))
    print(
        f"EPT pages for a fully-packed socket: {pages}; one row group "
        f"holds {capacity} pages (2 per 8 KiB row x {paper_geom.banks_per_socket} banks)"
    )
    assert pages <= capacity


def test_non_power_of_two_reservations(benchmark):
    def table():
        rows = []
        for size in (513, 1023, 2047):
            scram = scrambling_offline_fraction(size)
            _, artificial = artificial_group_reservation(size)
            rows.append([size, f"{scram * 100:.2f}%", f"{artificial * 100:.2f}%"])
        return rows

    rows = benchmark(table)
    print(banner("O2: non-power-of-2 subarray handling (§6)"))
    print(
        render_table(
            ["subarray rows", "scrambling boundary removal", "artificial groups"],
            rows,
        )
    )
    # Range endpoints: ~1.56 % down to ~0.39 %.
    assert 0.0150 <= scrambling_offline_fraction(513) <= 0.0160
    assert 0.0035 <= scrambling_offline_fraction(2047) <= 0.0040


def test_zebram_comparison(benchmark):
    results = benchmark(lambda: (zebram_overhead(1), zebram_overhead(4)))
    one_to_one, four_to_one = results
    print(banner("§3: guard-row scheme comparison"))
    print(
        render_table(
            ["scheme", "DRAM overhead"],
            [
                ["ZebRAM, 1 guard/normal row", f"{one_to_one * 100:.0f}%"],
                ["ZebRAM, 4 guards/normal row (modern)", f"{four_to_one * 100:.0f}%"],
                ["Siloz subarray groups + EPT guards", "~0.024%"],
            ],
        )
    )
    assert one_to_one == 0.5
    assert four_to_one == 0.8
