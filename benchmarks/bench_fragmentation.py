"""F-frag (paper §8.1 discussion): provisioning granularity analysis.

Not a numbered figure, but the paper's §8.1 makes quantitative claims
about subarray-group fragmentation: a 512 MiB VM on a 1.5 GiB group
strands 1 GiB; sub-NUMA clustering halves group sizes; providers already
sell VM sizes at group-like granularity.  This bench regenerates those
numbers for a representative VM mix across group sizes.
"""

from conftest import banner

from repro.core.fragmentation import (
    TYPICAL_VM_MIX,
    provider_aligned_mix,
    stranding_report,
    sweep_group_sizes,
)
from repro.dram.geometry import DRAMGeometry
from repro.eval.report import render_table
from repro.units import GiB, MiB, fmt_bytes


def _sweep():
    paper_group = DRAMGeometry.paper_default().subarray_group_bytes
    ddr5_group = DRAMGeometry.ddr5_server().subarray_group_bytes
    sizes = [paper_group // 2, paper_group, ddr5_group]  # SNC-2, DDR4, DDR5
    return paper_group, sweep_group_sizes(list(TYPICAL_VM_MIX), sizes)


def test_fragmentation_sweep(benchmark):
    paper_group, reports = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print(banner("§8.1: stranded DRAM vs subarray-group size"))
    labels = {
        paper_group // 2: "SNC-2 (768 MiB)",
        paper_group: "DDR4 (1.5 GiB)",
        2 * paper_group: "DDR5 (3 GiB)",
    }
    print(
        render_table(
            ["group size", "provisioned", "stranded", "stranded %"],
            [
                [
                    labels.get(r.group_bytes, fmt_bytes(r.group_bytes)),
                    fmt_bytes(r.provisioned_bytes),
                    fmt_bytes(r.stranded_bytes),
                    f"{r.stranded_fraction * 100:.1f}%",
                ]
                for r in reports
            ],
        )
    )
    by_group = {r.group_bytes: r for r in reports}
    # §8.1 headline: a lone 512 MiB VM strands 1 GiB on a 1.5 GiB group.
    single = stranding_report([512 * MiB], paper_group)
    print(f"single 512 MiB VM on a 1.5 GiB group strands {fmt_bytes(single.stranded_bytes)}")
    assert single.stranded_bytes == 1 * GiB
    # Stranding decreases monotonically with finer groups.
    assert (
        by_group[paper_group // 2].stranded_bytes
        <= by_group[paper_group].stranded_bytes
        <= by_group[2 * paper_group].stranded_bytes
    )
    # Provider-aligned sizing eliminates stranding entirely.
    aligned = stranding_report(provider_aligned_mix(paper_group), paper_group)
    assert aligned.stranded_bytes == 0
