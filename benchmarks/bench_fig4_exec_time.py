"""Figure 4 (paper §7.2): baseline-normalised execution time.

redis+YCSB A-F, Hadoop terasort, SPEC CPU 2017, PARSEC 3.0 — run on the
baseline hypervisor and on Siloz, five trials each, reported as
baseline-normalised overhead with 95 % confidence intervals.  The
paper's claim: geometric-mean difference within ±0.5 %.
"""

from conftest import banner, show_figure

from repro.eval import baseline_system, perf_experiment, siloz_system
from repro.workloads import EXEC_TIME_SUITES

TRIALS = 5
ACCESSES = 12_000


def _run():
    # Vectorized pipeline: bit-identical to scalar (tests/test_differential.py),
    # ≥20x faster end-to-end (BENCH_engine.json "fig5_e2e").
    systems = [
        baseline_system(seed=40, backend="vectorized"),
        siloz_system(seed=40, backend="vectorized"),
    ]
    return perf_experiment(
        systems,
        list(EXEC_TIME_SUITES),
        metric="time",
        trials=TRIALS,
        accesses=ACCESSES,
    )


def test_fig4_execution_time(benchmark):
    comparison = benchmark.pedantic(_run, rounds=1, iterations=1)
    print(banner("Figure 4: baseline-normalized execution time overhead (%)"))
    show_figure(
        comparison,
        name="fig4_exec_time",
        title="lower is better; paper: |geomean| < 0.5%",
    )
    ratio = comparison.geomean_ratio("siloz")
    print(f"geomean(siloz/baseline) = {ratio:.5f}")
    # Paper claim at our noise level: well within ±1 %, targeting ±0.5 %.
    assert abs(ratio - 1.0) < 0.01
    # Every per-workload mean overhead is small (no pathological suite).
    for workload in comparison.workloads():
        mean_pct, _ = comparison.overhead_percent(workload, "siloz")
        assert abs(mean_pct) < 3.0, f"{workload}: {mean_pct:+.2f}%"
