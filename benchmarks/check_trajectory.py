#!/usr/bin/env python3
"""Compare two ``BENCH_engine.json`` points and gate on regressions.

CI stashes the committed ``BENCH_engine.json`` before the perf guard
overwrites it, then runs::

    python benchmarks/check_trajectory.py PREV CURRENT --max-regression 0.20

The check fails (exit 1) when the current campaign speedup has dropped
more than ``--max-regression`` (a fraction) below the previous point.
The comparison is appended to the current file's ``trajectory`` list so
the uploaded artifact carries the history of the run-over-run movement.
A missing previous file or key is not an error (first run, renamed
benchmark): the check passes and says why.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Sequence


def load_speedup(path: pathlib.Path, key: str) -> float | None:
    """The recorded speedup at *key*, or None when absent/unreadable."""
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    entry = doc.get(key)
    if not isinstance(entry, dict):
        return None
    speedup = entry.get("speedup")
    return float(speedup) if isinstance(speedup, (int, float)) else None


def append_trajectory(path: pathlib.Path, point: dict) -> None:
    """Record the comparison on the current file (best effort)."""
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError):
        return
    doc.setdefault("trajectory", []).append(point)
    path.write_text(json.dumps(doc, indent=2) + "\n")


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("previous", type=pathlib.Path)
    parser.add_argument("current", type=pathlib.Path)
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="allowed fractional drop in speedup (default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--key",
        default="table3_containment",
        help="BENCH_engine.json entry whose 'speedup' is compared",
    )
    args = parser.parse_args(argv)

    current = load_speedup(args.current, args.key)
    if current is None:
        print(f"trajectory: no {args.key!r} speedup in {args.current} — FAIL")
        return 1
    previous = load_speedup(args.previous, args.key)
    if previous is None:
        print(
            f"trajectory: no previous point ({args.previous}); "
            f"current {args.key} speedup {current:.2f}x accepted"
        )
        return 0

    floor = previous * (1.0 - args.max_regression)
    ok = current >= floor
    append_trajectory(
        args.current,
        {
            "key": args.key,
            "previous_speedup": previous,
            "current_speedup": current,
            "floor": round(floor, 3),
            "max_regression": args.max_regression,
            "ok": ok,
        },
    )
    verdict = "OK" if ok else "REGRESSED"
    print(
        f"trajectory: {args.key} speedup {previous:.2f}x -> {current:.2f}x "
        f"(floor {floor:.2f}x, max regression "
        f"{args.max_regression:.0%}) — {verdict}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
