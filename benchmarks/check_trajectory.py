#!/usr/bin/env python3
"""Compare two ``BENCH_engine.json`` points and gate on regressions.

CI stashes the committed ``BENCH_engine.json`` before the perf guard
overwrites it, then runs::

    python benchmarks/check_trajectory.py PREV CURRENT --max-regression 0.20

Without ``--key`` every metric in :data:`TRACKED` is gated: the
campaign speedups (batched-over-scalar and vectorized-over-batched),
the Figure 5 decode speedup, the end-to-end Figure 5 pipeline speedup,
and the disabled-tracing overhead.  The
check fails (exit 1) when any "up" metric drops more than
``--max-regression`` (a fraction) below the previous point, or any
"down" metric rises above the previous point by more than that fraction
(with a one-percentage-point floor, since overheads hover near zero).
With ``--key`` only that entry's ``speedup`` is gated (the fleet bench
uses this).  Each comparison is appended to the current file's
``trajectory`` list so the uploaded artifact carries the history of the
run-over-run movement.  A metric absent from the previous file, or
absent from both files, is not an error (first run, renamed benchmark):
it is skipped with a note.  A metric present previously but missing
from the current file fails the check.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
from typing import Sequence

#: Metrics gated when no ``--key`` is given: (entry, field, direction).
#: "up" means higher is better (speedups); "down" means lower is better
#: (overhead percentages).
TRACKED: tuple[tuple[str, str, str], ...] = (
    ("table3_containment", "speedup", "up"),
    ("table3_containment", "vectorized_speedup", "up"),
    ("fig5_throughput", "speedup", "up"),
    ("fig5_e2e", "speedup", "up"),
    ("tracing", "disabled_overhead_pct", "down"),
)

#: Floor clamps for metrics with high cross-runner variance.  The
#: committed previous point may have been measured on a faster runner
#: than the one gating today; without a clamp, one lucky measurement
#: permanently ratchets the floor above what honest hardware can
#: reproduce (exactly what happened to fig5: a 2.25x point pushed the
#: floor to 1.80x, and the next runner's honest 1.61x failed the gate).
#: The clamp bounds how high the *relative* floor can climb; it does
#: not weaken the absolute targets the benches assert themselves
#: (fig5's flat-decode win still must clear 1.0x inside bench_engine).
#: For "up" metrics the clamp bounds how high the floor can climb; for
#: "down" metrics it bounds how low the ceiling can sink.
BASELINE_CLAMPS: dict[tuple[str, str], float] = {
    # Single-threaded decode speedup; observed 1.61x-2.25x across
    # runners (cache/turbo sensitive).  1.30x is below every honest
    # observation and still well above the 1.0x break-even.
    ("fig5_throughput", "speedup"): 1.30,
    # Vectorized-over-scalar bake-off speedup; observed ~3.8x on a
    # 1-core container.  1.50x is well below honest observations and
    # still asserts the numpy path actually wins.
    ("bakeoff_campaign", "speedup"): 1.50,
    # End-to-end fig5 pipeline speedup; observed ~23x at introduction.
    # The clamp matches the ISSUE's absolute ≥20x target (which
    # bench_engine asserts itself) so a lucky fast point can never
    # ratchet the relative floor above what the target demands.
    ("fig5_e2e", "speedup"): 20.0,
    # Disabled-tracing overhead is timing noise centred on zero; a
    # lucky negative point (e.g. -1.33%) must not force every future
    # run to also measure negative.  The ceiling never drops below
    # +1pp; the bench itself asserts the 2pp absolute tolerance.
    ("tracing", "disabled_overhead_pct"): 1.0,
    # Sustained serve-daemon throughput (req/s); observed ~1400 on a
    # dev container.  Absolute req/s is the most runner-sensitive
    # metric we gate (placements simulate EPT construction), so the
    # floor never climbs above 400 — well below honest observations,
    # far above a hung or serialized daemon.
    ("serve_throughput", "rps"): 400.0,
    # Cluster campaign throughput (1000 hosts / 100k VM arrivals);
    # absolute hosts/sec depends on cores and clock, so the floor never
    # climbs above 1.5 — below any honest observation (a 1-core
    # container sustains ~3), far above a wedged or accidentally
    # serialized-by-lock campaign.
    ("fleet_cluster", "hosts_per_sec"): 1.5,
}


def load_metric(path: pathlib.Path, key: str, field: str = "speedup") -> float | None:
    """The recorded *field* of entry *key*, or None when absent."""
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    entry = doc.get(key)
    if not isinstance(entry, dict):
        return None
    value = entry.get(field)
    return float(value) if isinstance(value, (int, float)) else None


def append_trajectory(path: pathlib.Path, point: dict) -> None:
    """Record the comparison on the current file (best effort)."""
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError):
        return
    doc.setdefault("trajectory", []).append(point)
    path.write_text(json.dumps(doc, indent=2) + "\n")


def check_metric(
    current_path: pathlib.Path,
    previous_path: pathlib.Path,
    key: str,
    field: str,
    direction: str,
    max_regression: float,
) -> bool:
    """Gate one metric; prints the verdict, returns pass/fail."""
    label = key if field == "speedup" else f"{key}.{field}"
    current = load_metric(current_path, key, field)
    previous = load_metric(previous_path, key, field)
    if current is None:
        if previous is None:
            print(f"trajectory: {label} absent from both points — skipped")
            return True
        print(f"trajectory: no {label} in {current_path} — FAIL")
        return False
    if previous is None:
        print(
            f"trajectory: no previous point ({previous_path}); "
            f"current {label} {current:.2f} accepted"
        )
        return True

    if direction == "up":
        bound = previous * (1.0 - max_regression)
        clamp = BASELINE_CLAMPS.get((key, field))
        if clamp is not None and bound > clamp:
            print(
                f"trajectory: {label} floor clamped "
                f"{bound:.2f} -> {clamp:.2f} (cross-runner variance bound)"
            )
            bound = clamp
        ok = current >= bound
        bound_name = "floor"
    else:
        bound = previous + max(abs(previous) * max_regression, 1.0)
        clamp = BASELINE_CLAMPS.get((key, field))
        if clamp is not None and bound < clamp:
            print(
                f"trajectory: {label} ceiling clamped "
                f"{bound:.2f} -> {clamp:.2f} (cross-runner variance bound)"
            )
            bound = clamp
        ok = current <= bound
        bound_name = "ceiling"
    point = {
        "key": key,
        "previous_speedup" if field == "speedup" else "previous_value": previous,
        "current_speedup" if field == "speedup" else "current_value": current,
        bound_name: round(bound, 3),
        "max_regression": max_regression,
        "ok": ok,
    }
    if field != "speedup":
        point["field"] = field
    append_trajectory(current_path, point)
    verdict = "OK" if ok else "REGRESSED"
    print(
        f"trajectory: {label} {previous:.2f} -> {current:.2f} "
        f"({bound_name} {bound:.2f}, max regression "
        f"{max_regression:.0%}) — {verdict}"
    )
    return ok


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("previous", type=pathlib.Path)
    parser.add_argument("current", type=pathlib.Path)
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="allowed fractional drop in speedup (default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--key",
        default=None,
        help="gate only this entry's metric instead of the tracked "
        "engine metrics (used by the fleet and bakeoff benches)",
    )
    parser.add_argument(
        "--field",
        default="speedup",
        help="with --key: which field of the entry to gate (default "
        "'speedup')",
    )
    parser.add_argument(
        "--direction",
        choices=("up", "down"),
        default="up",
        help="with --key: 'up' gates a drop below the previous point "
        "(speedups), 'down' gates a rise above it (losses, overheads)",
    )
    args = parser.parse_args(argv)

    if args.key is not None:
        # A bench may decline to record a gateable point (e.g. the fleet
        # scaling bench on a single-core runner): it writes a "skipped"
        # marker instead of a speedup.  That is a loud, deliberate skip —
        # pass it through without gating rather than failing on the
        # missing metric.  With one exception: on a multi-core machine a
        # skip marker should never exist in the first place, so TWO
        # consecutive recorded skips while this gate runs multi-core
        # mean the metric is being silently starved (mislabelled
        # runner, env knob left set, bench bug) — fail loudly instead
        # of letting skips satisfy the gate forever.
        try:
            entry = json.loads(args.current.read_text()).get(args.key)
        except (OSError, ValueError):
            entry = None
        if isinstance(entry, dict) and "skipped" in entry:
            try:
                prev_entry = json.loads(args.previous.read_text()).get(args.key)
            except (OSError, ValueError):
                prev_entry = None
            prev_skipped = isinstance(prev_entry, dict) and "skipped" in prev_entry
            cpus = os.cpu_count() or 1
            if prev_skipped and cpus >= 2:
                print(
                    f"trajectory: {args.key} skipped 2+ consecutive recorded "
                    f"runs (now: {entry['skipped']}; previously: "
                    f"{prev_entry['skipped']}) while this gate runs on "
                    f"{cpus} CPUs — a capable runner must record the "
                    "metric — FAIL"
                )
                return 1
            print(
                f"trajectory: {args.key} SKIPPED ({entry['skipped']}) — "
                "not gated"
            )
            return 0
        specs: Sequence[tuple[str, str, str]] = (
            (args.key, args.field, args.direction),
        )
    else:
        specs = TRACKED
    # The primary metric must exist in the current point: a bench run
    # that produced nothing is a failure, not a skip.
    primary = specs[0][0]
    if load_metric(args.current, primary, specs[0][1]) is None:
        print(
            f"trajectory: no {primary!r} {specs[0][1]} in {args.current} — FAIL"
        )
        return 1

    ok = True
    for key, field, direction in specs:
        ok = (
            check_metric(
                args.current, args.previous, key, field, direction, args.max_regression
            )
            and ok
        )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
