"""R1 (paper §8.3): why guard rows beat a software refresh routine.

Replays the paper's rejected-alternative study: a 1 ms software refresh
for EPT rows scheduled as a task (Linux guarantees only a *minimum* of
1 ms between runs; gaps beyond 32 ms observed) or from the tick IRQ
(tighter, but ticks get delayed/dropped).  Guard rows need no scheduling
and are never vulnerable.
"""

from conftest import banner

from repro.core.softrefresh import RefreshScheme, compare_schemes
from repro.eval.report import render_table

DURATION_S = 120.0


def test_software_refresh_misses_deadlines(benchmark):
    results = benchmark.pedantic(
        lambda: compare_schemes(duration_s=DURATION_S, seed=80),
        rounds=1,
        iterations=1,
    )
    print(banner("§8.3: 1 ms EPT software-refresh deadline study"))
    rows = []
    for scheme in RefreshScheme:
        log = results[scheme]
        rows.append(
            [
                scheme.value,
                log.refreshes,
                log.missed_deadlines,
                f"{log.miss_rate * 100:.2f}%",
                f"{log.min_interval_ms:.3f}",
                f"{log.max_interval_ms:.3f}",
                "VULNERABLE" if log.vulnerable else "safe",
            ]
        )
    print(
        render_table(
            [
                "scheme",
                "refreshes",
                "missed deadlines",
                "miss rate",
                "min gap (ms)",
                "max gap (ms)",
                "verdict",
            ],
            rows,
        )
    )
    task = results[RefreshScheme.TIMER_TASK]
    irq = results[RefreshScheme.TICK_IRQ]
    guard = results[RefreshScheme.GUARD_ROWS]
    # Paper §8.3 observations:
    assert task.min_interval_ms >= 1.0  # "minimum of 1 ms between refreshes"
    assert task.max_interval_ms > 32.0  # "a period greater than 32 ms"
    assert irq.vulnerable  # delayed/dropped ticks still miss
    assert irq.miss_rate < task.miss_rate
    assert not guard.vulnerable  # nothing to schedule, nothing to miss
