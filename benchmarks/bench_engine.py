"""Engine trajectory point: fast backends vs the scalar reference.

Times the two benchmark workloads the fast engines were built for:

- a Table 3-style containment campaign (attack stack dominated by row
  activations — exercises ``repro.engine.batch`` and the numpy kernels
  in ``repro.engine.vector``), batched and vectorized backends vs the
  scalar golden reference;
- a Figure 5-style throughput sweep (controller traces dominated by
  physical→media decode — exercises the memoized flat decode in
  ``repro.dram.mapping``), flat decode vs the MediaAddress reference;
- the same Figure 5 campaign *end-to-end* on the vectorized pipeline
  (numpy trace synthesis in ``repro.workloads.trace`` feeding the
  segmented closed forms in ``repro.memctrl.pipeline``) vs the scalar
  reference path.

Both comparisons first assert the outputs are *identical* — a speedup
that changes results is a bug, not a win — then record wall times and
speedups to ``BENCH_engine.json`` at the repo root.  CI runs this file
as the perf regression guard: the campaign must hold the ISSUE's ≥2×
target and the decode path must never be slower than the reference.
"""

from __future__ import annotations

import json
import pathlib
import time

from conftest import banner

from repro.attack import attack_from_vm
from repro.core import SilozHypervisor
from repro.hv import Machine, VmSpec
from repro.units import MiB

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
BENCH_JSON = REPO_ROOT / "BENCH_engine.json"

#: Minimum acceptable speedups (CI fails below these).
CAMPAIGN_TARGET = 2.0  # batched over scalar (attack hot path)
VECTOR_TARGET = 2.0  # vectorized over batched
VECTOR_SCALAR_TARGET = 9.0  # vectorized over scalar
DECODE_TARGET = 1.0  # regression guard: never slower than reference
FIG5_E2E_TARGET = 20.0  # vectorized workload→memctrl pipeline over scalar

_RESULTS: dict = {
    "bench": "engine",
    "note": "batched + vectorized SimBackends vs scalar golden reference; "
    "see README Performance",
}


def _record(key: str, payload: dict) -> None:
    _RESULTS[key] = payload
    BENCH_JSON.write_text(json.dumps(_RESULTS, indent=2) + "\n")


def _time_best(fn, repeats: int = 3, warmup: int = 0):
    """(best wall seconds, last result) over *repeats* timed runs.

    *warmup* extra untimed runs precede the timed ones: the first run
    of a backend pays one-off costs (numpy import, lazy decode tables,
    allocator growth) that best-of-N would otherwise fold into the
    measurement on short campaigns.
    """
    best = float("inf")
    result = None
    for _ in range(warmup):
        fn()
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _campaign(backend: str, *, seed: int = 300, budget: int = 25):
    """One Table 3-style containment campaign on the small machine."""
    hv = SilozHypervisor.boot(Machine.small(seed=seed, backend=backend))
    attacker = hv.create_vm(VmSpec(name="attacker", memory_bytes=2 * MiB))
    hv.create_vm(VmSpec(name="victim", memory_bytes=2 * MiB))
    outcome = attack_from_vm(hv, attacker, seed=seed, pattern_budget=budget)
    return outcome.summary(), list(hv.machine.dram.flips_log)


def test_engine_campaign_speedup(benchmark):
    """bench_table3-style campaign across all three backends.

    Gates: batched ≥2× over scalar, vectorized ≥2× over batched and
    ≥9× over scalar — all with identical campaign outcomes and flip
    logs, or the speedups are void."""

    def _measure():
        scalar_s, scalar_out = _time_best(lambda: _campaign("scalar"), warmup=1)
        batched_s, batched_out = _time_best(
            lambda: _campaign("batched"), repeats=5, warmup=1
        )
        vector_s, vector_out = _time_best(
            lambda: _campaign("vectorized"), repeats=5, warmup=1
        )
        return scalar_s, scalar_out, batched_s, batched_out, vector_s, vector_out

    scalar_s, scalar_out, batched_s, batched_out, vector_s, vector_out = (
        benchmark.pedantic(_measure, rounds=1, iterations=1)
    )
    assert scalar_out == batched_out, "batched diverged: speedup is void"
    assert scalar_out == vector_out, "vectorized diverged: speedup is void"
    speedup = scalar_s / batched_s
    vector_speedup = batched_s / vector_s
    vector_scalar_speedup = scalar_s / vector_s
    print(banner("Engine: Table 3-style campaign, scalar vs batched vs vectorized"))
    print(
        f"scalar {scalar_s * 1e3:8.1f} ms   batched {batched_s * 1e3:8.1f} ms"
        f"   vectorized {vector_s * 1e3:8.1f} ms"
    )
    print(
        f"batched/scalar {speedup:.2f}x (target >= {CAMPAIGN_TARGET}x)   "
        f"vectorized/batched {vector_speedup:.2f}x (target >= {VECTOR_TARGET}x)   "
        f"vectorized/scalar {vector_scalar_speedup:.2f}x "
        f"(target >= {VECTOR_SCALAR_TARGET}x)"
    )
    _record(
        "table3_containment",
        {
            "scalar_seconds": round(scalar_s, 6),
            "batched_seconds": round(batched_s, 6),
            "vectorized_seconds": round(vector_s, 6),
            "speedup": round(speedup, 3),
            "vectorized_speedup": round(vector_speedup, 3),
            "vectorized_scalar_speedup": round(vector_scalar_speedup, 3),
            "target": CAMPAIGN_TARGET,
            "vectorized_target": VECTOR_TARGET,
            "vectorized_scalar_target": VECTOR_SCALAR_TARGET,
            "identical_results": True,
        },
    )
    assert speedup >= CAMPAIGN_TARGET, (
        f"batched engine only {speedup:.2f}x over scalar "
        f"(target {CAMPAIGN_TARGET}x); see BENCH_engine.json"
    )
    assert vector_speedup >= VECTOR_TARGET, (
        f"vectorized engine only {vector_speedup:.2f}x over batched "
        f"(target {VECTOR_TARGET}x); see BENCH_engine.json"
    )
    assert vector_scalar_speedup >= VECTOR_SCALAR_TARGET, (
        f"vectorized engine only {vector_scalar_speedup:.2f}x over scalar "
        f"(target {VECTOR_SCALAR_TARGET}x); see BENCH_engine.json"
    )


def test_engine_tracing_overhead(benchmark):
    """Observability must be free when off and harmless when on.

    - tracing enabled must not change campaign results (events are
      derived from the simulation, never fed back into it — in
      particular, no RNG draws);
    - with tracing *disabled*, the instrumented hot path must stay
      within 2 % of the same campaign measured earlier in this session
      (the ``ENABLED``-branch-only contract of ``repro.obs``).
    """
    from repro import obs

    TOLERANCE_PCT = 2.0

    def _measure():
        obs.disable(reset=True)
        off_s, off_out = _time_best(lambda: _campaign("batched"), repeats=5)
        obs.enable(reset=True)
        on_s, on_out = _time_best(lambda: _campaign("batched"), repeats=5)
        emitted = obs.tracer().emitted
        obs.disable(reset=True)
        return off_s, off_out, on_s, on_out, emitted

    off_s, off_out, on_s, on_out, emitted = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    assert off_out == on_out, "tracing perturbed simulation results"
    assert emitted > 0, "enabled tracing recorded no events"
    # Baseline: the batched campaign time already measured this session
    # (same code, same machine); fall back to the disabled run itself
    # when this test runs alone.
    base_s = _RESULTS.get("table3_containment", {}).get("batched_seconds", off_s)
    disabled_overhead_pct = (off_s / base_s - 1.0) * 100.0
    enabled_overhead_pct = (on_s / off_s - 1.0) * 100.0
    print(banner("Engine: campaign with observability off/on"))
    print(
        f"disabled {off_s * 1e3:8.1f} ms ({disabled_overhead_pct:+.2f}% vs "
        f"baseline)   enabled {on_s * 1e3:8.1f} ms "
        f"({enabled_overhead_pct:+.2f}%)   {emitted} event(s)/run"
    )
    _record(
        "tracing",
        {
            "disabled_seconds": round(off_s, 6),
            "enabled_seconds": round(on_s, 6),
            "disabled_overhead_pct": round(disabled_overhead_pct, 3),
            "enabled_overhead_pct": round(enabled_overhead_pct, 3),
            "events_per_run": emitted,
            "tolerance_pct": TOLERANCE_PCT,
            "identical_results": True,
        },
    )
    assert disabled_overhead_pct < TOLERANCE_PCT, (
        f"disabled tracing costs {disabled_overhead_pct:+.2f}% on the "
        f"campaign hot path (tolerance {TOLERANCE_PCT}%); see BENCH_engine.json"
    )


def test_engine_decode_speedup(benchmark):
    """bench_fig5-style trace sweep: flat decode vs MediaAddress path."""
    from repro.eval.experiments import siloz_system
    from repro.memctrl.controller import MemoryController
    from repro.workloads import THROUGHPUT_SUITES
    from repro.workloads.runner import run_in_vm

    def _reference_controller(mapping, timings=None):
        controller = MemoryController(mapping, timings)
        controller._decode_flat = None  # pre-engine MediaAddress decode
        return controller

    system = siloz_system(seed=50, backend="batched")
    workloads = list(THROUGHPUT_SUITES)

    def _sweep(factory):
        return [
            vars(
                run_in_vm(
                    system.hv,
                    system.vm,
                    workload,
                    accesses=12_000,
                    trial=trial,
                    controller_factory=factory,
                ).trace
            )
            for workload in workloads
            for trial in range(2)
        ]

    def _measure():
        ref_s, ref = _time_best(lambda: _sweep(_reference_controller))
        fast_s, fast = _time_best(lambda: _sweep(MemoryController))
        return ref_s, ref, fast_s, fast

    ref_s, ref, fast_s, fast = benchmark.pedantic(_measure, rounds=1, iterations=1)
    assert fast == ref, "flat decode changed trace results"
    speedup = ref_s / fast_s
    print(banner("Engine: Figure 5-style traces, reference vs flat decode"))
    print(
        f"reference {ref_s * 1e3:8.1f} ms   flat {fast_s * 1e3:8.1f} ms"
        f"   speedup {speedup:.2f}x (guard >= {DECODE_TARGET}x)"
    )
    _record(
        "fig5_throughput",
        {
            "reference_seconds": round(ref_s, 6),
            "flat_decode_seconds": round(fast_s, 6),
            "speedup": round(speedup, 3),
            "target": DECODE_TARGET,
            "identical_results": True,
        },
    )
    assert speedup >= DECODE_TARGET, (
        f"flat decode slower than reference ({speedup:.2f}x); "
        "see BENCH_engine.json"
    )


def test_engine_fig5_e2e_speedup(benchmark):
    """End-to-end Figure 5 campaign: scalar vs vectorized pipeline.

    Unlike the decode micro-comparison above, this times the *whole*
    workload→memctrl path per backend — trace synthesis
    (``generate_trace`` vs the one-transplant numpy batch), decode, and
    controller scheduling (scalar fold vs segmented closed forms) — over
    the full Figure 5 workload sweep on both systems.  Gate: vectorized
    ≥20× over scalar with bit-identical TraceResults, or the speedup is
    void."""
    from repro.eval.experiments import baseline_system, siloz_system
    from repro.workloads import THROUGHPUT_SUITES
    from repro.workloads.runner import run_in_vm

    workloads = list(THROUGHPUT_SUITES)

    def _systems(backend: str):
        return [
            baseline_system(seed=51, backend=backend),
            siloz_system(seed=51, backend=backend),
        ]

    def _sweep(systems):
        return [
            vars(
                run_in_vm(
                    system.hv, system.vm, workload, accesses=12_000, trial=trial
                ).trace
            )
            for system in systems
            for workload in workloads
            for trial in range(2)
        ]

    def _measure():
        scalar_systems = _systems("scalar")
        vector_systems = _systems("vectorized")
        scalar_s, scalar_out = _time_best(
            lambda: _sweep(scalar_systems), repeats=2, warmup=1
        )
        vector_s, vector_out = _time_best(
            lambda: _sweep(vector_systems), repeats=5, warmup=1
        )
        return scalar_s, scalar_out, vector_s, vector_out

    scalar_s, scalar_out, vector_s, vector_out = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    assert scalar_out == vector_out, "vectorized pipeline diverged: speedup is void"
    speedup = scalar_s / vector_s
    print(banner("Engine: Figure 5 campaign end-to-end, scalar vs vectorized"))
    print(
        f"scalar {scalar_s * 1e3:8.1f} ms   vectorized {vector_s * 1e3:8.1f} ms"
        f"   speedup {speedup:.2f}x (target >= {FIG5_E2E_TARGET}x)"
    )
    _record(
        "fig5_e2e",
        {
            "scalar_seconds": round(scalar_s, 6),
            "vectorized_seconds": round(vector_s, 6),
            "speedup": round(speedup, 3),
            "target": FIG5_E2E_TARGET,
            "identical_results": True,
        },
    )
    assert speedup >= FIG5_E2E_TARGET, (
        f"end-to-end fig5 pipeline only {speedup:.2f}x over scalar "
        f"(target {FIG5_E2E_TARGET}x); see BENCH_engine.json"
    )
