"""Serve trajectory point: sustained load through the async daemon.

Drives an in-process ``repro serve`` daemon with the open-loop load
generator and records the serving numbers that gate the trajectory:
sustained req/s, p50/p99 latency, and the rejection rate, written to
``BENCH_serve.json`` at the repo root.

Two kinds of runs:

- **Sustained** (scalar): one >=10k-request run — the headline
  throughput/latency measurement the ``serve_throughput`` trajectory
  gate consumes.
- **Digest** (all three backends): smaller seeded runs whose final
  fleet state digest must be **bit-identical** to replaying the
  daemon's own request log through the synchronous
  :class:`~repro.serve.core.FleetStateMachine` — the proof that the
  async service is a faithful linearization of the fleet model on
  every backend.
"""

from __future__ import annotations

import asyncio
import json
import pathlib

from repro.serve import LoadMix, LoadgenConfig, ServiceConfig, serve_and_load

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
BENCH_JSON = REPO_ROOT / "BENCH_serve.json"

#: The headline sustained run (>=10k requests per the acceptance bar).
SUSTAINED_REQUESTS = 12_000
#: Digest-verification runs per non-headline backend.
DIGEST_REQUESTS = 1_500
#: Production-shaped mix: read-heavy with steady placement churn and
#: rare attacks (placements simulate EPT construction and dominate
#: per-op cost; the mix keeps the daemon busy, not pathological).
MIX = LoadMix(place=25, evict=5, attack=1, health=30, capacity=20, metrics=19)

_RESULTS: dict = {
    "bench": "serve",
    "note": "open-loop load through the async serve daemon; every run's "
    "final fleet digest must replay bit-identically through the "
    "synchronous path",
}


def _record(key: str, payload: dict) -> None:
    _RESULTS[key] = payload
    BENCH_JSON.write_text(json.dumps(_RESULTS, indent=2) + "\n")


def _banner(title: str) -> str:
    rule = "=" * len(title)
    return f"\n{rule}\n{title}\n{rule}"


def _run(backend: str, requests: int):
    service = ServiceConfig(hosts=2, backend=backend, seed=7)
    config = LoadgenConfig(
        requests=requests,
        connections=8,
        window=16,
        seed=7,
        mix=MIX,
        attack_budget=1,
    )
    return asyncio.run(serve_and_load(service, config))


def test_serve_sustained() -> None:
    """The >=10k-request scalar run: throughput, latency, rejections."""
    report = _run("scalar", SUSTAINED_REQUESTS)
    print(_banner(f"Serve: {SUSTAINED_REQUESTS} requests, scalar backend"))
    print(report.render_text())
    payload = report.to_dict()
    payload["backend"] = "scalar"
    _record("serve_throughput", payload)
    assert report.requests >= 10_000, "sustained run fell short of 10k"
    assert report.errors == 0, f"unexpected errors: {report.outcomes}"
    assert report.replay_verified, (
        "async digest diverged from synchronous replay "
        f"({report.server_digest} != {report.replay_digest})"
    )


def test_serve_digest_all_backends() -> None:
    """Replay-digest equality on every backend (smaller seeded runs)."""
    print(_banner(f"Serve: replay digests, {DIGEST_REQUESTS} requests/backend"))
    for backend in ("scalar", "batched", "vectorized"):
        report = _run(backend, DIGEST_REQUESTS)
        verdict = "MATCH" if report.replay_verified else "MISMATCH"
        print(
            f"{backend:>10}: {report.rps:7,.0f} req/s  "
            f"digest {report.server_digest[:16]}… replay {verdict}"
        )
        _record(
            f"serve_digest_{backend}",
            {
                "backend": backend,
                "requests": report.requests,
                "rps": round(report.rps, 1),
                "server_digest": report.server_digest,
                "replay_digest": report.replay_digest,
                "replay_verified": report.replay_verified,
            },
        )
        assert report.errors == 0, f"{backend}: errors {report.outcomes}"
        assert report.replay_verified, (
            f"{backend}: async digest diverged from synchronous replay"
        )


if __name__ == "__main__":
    test_serve_sustained()
    test_serve_digest_all_backends()
