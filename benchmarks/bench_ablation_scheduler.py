"""A3: controller-model robustness of the Figure 4 conclusion.

The paper's headline performance result (Siloz within ±0.5 % of
baseline) should not depend on memory-controller details the evaluation
server happens to have.  This ablation reruns a Figure-4 subset under
three controller models — in-order open-page (the default), FR-FCFS,
and closed-page — and asserts the Siloz/baseline geomean stays ~1.0
under every one of them.
"""

from conftest import banner

from repro.eval import baseline_system, perf_experiment, siloz_system
from repro.eval.report import render_table
from repro.memctrl import MemoryController
from repro.memctrl.frfcfs import FrFcfsController

WORKLOADS = ["redis-b", "terasort", "mlc-stream", "mysql"]
TRIALS = 3
ACCESSES = 8000

CONTROLLERS = {
    "in-order / open-page": None,
    "fr-fcfs": lambda mapping, timings: FrFcfsController(mapping, timings),
    "closed-page": lambda mapping, timings: MemoryController(
        mapping, timings, page_policy="closed"
    ),
}


def _run():
    ratios = {}
    for label, factory in CONTROLLERS.items():
        systems = [baseline_system(seed=90), siloz_system(seed=90)]
        comparison = perf_experiment(
            systems,
            WORKLOADS,
            metric="time",
            trials=TRIALS,
            accesses=ACCESSES,
            controller_factory=factory,
        )
        ratios[label] = comparison.geomean_ratio("siloz")
    return ratios


def test_scheduler_robustness(benchmark):
    ratios = benchmark.pedantic(_run, rounds=1, iterations=1)
    print(banner("A3: Siloz/baseline geomean under controller variants"))
    print(
        render_table(
            ["controller model", "geomean(siloz/baseline)"],
            [[label, f"{ratio:.5f}"] for label, ratio in ratios.items()],
        )
    )
    for label, ratio in ratios.items():
        assert abs(ratio - 1.0) < 0.015, f"{label}: {ratio}"
